"""Fault tolerance: kill a worker mid-workload and watch the repair.

Builds a 5-worker cluster with health scans enabled, writes a few files,
fails the worker holding the most replicas, and shows the Replication
Monitor re-replicating every under-replicated block onto the survivors.
Finally the node recovers (empty) and starts receiving data again.

Run:  python examples/fault_tolerance.py
"""

from repro.cluster import build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager, configure_policies
from repro.dfs import (
    DFSClient,
    FaultInjector,
    Master,
    NodeManager,
    OctopusPlacementPolicy,
)
from repro.sim import Simulator


def replica_summary(master) -> str:
    per_node = {n.node_id: 0 for n in master.topology.nodes}
    for file in master.files():
        for block in master.blocks.blocks_of(file):
            for replica in block.replica_list():
                per_node[replica.node_id] += 1
    return "  ".join(f"{node}={count}" for node, count in sorted(per_node.items()))


def main() -> None:
    sim = Simulator()
    topology = build_local_cluster(num_workers=5, memory_per_node=2 * GB)
    conf = Configuration({"monitor.health_checks_enabled": True})
    placement = OctopusPlacementPolicy(topology, NodeManager(topology), conf)
    master = Master(topology, placement, sim, conf)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim, conf)
    configure_policies(manager, downgrade="lru", upgrade="osa")
    injector = FaultInjector(sim, master)

    # Write a working set; replicas spread over nodes and tiers.
    for i in range(12):
        client.create(f"/data/part{i:02d}.bin", 256 * MB)
        sim.run(until=sim.now() + 20)
    print("replicas per node:", replica_summary(master))

    # Fail the busiest worker.
    busiest = max(
        topology.nodes, key=lambda n: sum(d.replica_count for d in n.devices())
    )
    event = injector.fail(busiest.node_id)
    print(
        f"\nfailed {event.node_id}: lost {event.replicas_lost} replicas, "
        f"{injector.under_replicated_blocks()} blocks under-replicated"
    )

    # Health scans (every 30 s) re-replicate from the survivors.
    sim.run(until=sim.now() + 600)
    print(
        f"after repair: {injector.under_replicated_blocks()} blocks "
        f"under-replicated, {manager.monitor.replicas_repaired} replicas rebuilt"
    )
    print("replicas per node:", replica_summary(master))

    # The node comes back empty and is a placement target again.
    injector.recover(busiest.node_id)
    client.create("/data/after-recovery.bin", 256 * MB)
    sim.run(until=sim.now() + 60)
    print(f"\n{busiest.node_id} recovered; replicas per node:", replica_summary(master))
    print(
        "block transfers committed during the run: "
        f"{manager.monitor.transfers_committed} "
        f"({manager.monitor.replicas_repaired} of them repairs)"
    )


if __name__ == "__main__":
    main()
