"""Extend the framework with a custom downgrade policy.

The paper's framework is explicitly pluggable (Sec 3.3): a policy
implements the four decision points plus the file-event callbacks.  This
example adds **GDS** — a Greedy-Dual-Size-flavoured policy that evicts
the file with the lowest (frequency / size) density, so large rarely-used
files leave memory first — and races it against LRU on the FB workload.

Run:  python examples/custom_policy.py
"""

from typing import Optional

from repro.cluster import StorageTier
from repro.core import ReplicationManager
from repro.core.policy import DowngradePolicy
from repro.core.registry import configure_policies
from repro.dfs.namespace import INodeFile
from repro.engine import SystemConfig, WorkloadRunner, completion_reduction
from repro.workload import FB_PROFILE, scaled_profile, synthesize_trace


class GreedyDualSizePolicy(DowngradePolicy):
    """Evict the file with the lowest access density (accesses per GB).

    Implements only decision point 2; the shared base class provides the
    proactive start/stop thresholds, and the monitor resolves the "how"
    through the multi-objective placement — exactly the plug-in surface
    the paper describes.
    """

    name = "gds"

    def select_file_to_downgrade(self, tier: StorageTier) -> Optional[INodeFile]:
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        stats = self.ctx.stats

        def density(file: INodeFile) -> float:
            accesses = stats.get_or_create(file).total_accesses
            return (accesses + 1.0) / max(file.size, 1)

        return min(candidates, key=lambda f: (density(f), f.inode_id))


#: Memory scaled to the 0.25x workload so tiering pressure is preserved.
MEMORY_PER_NODE = 1 * 2**30


def run(label: str, trace, downgrade_policy=None, downgrade_name=None):
    config = SystemConfig(label=label, placement="octopus", upgrade="osa",
                          downgrade=downgrade_name,
                          memory_per_node=MEMORY_PER_NODE)
    runner = WorkloadRunner(trace, config)
    if downgrade_policy is not None:
        # Manual wiring for a policy class the registry doesn't know.
        if runner.manager is None:
            runner.manager = ReplicationManager(runner.master, runner.sim)
            configure_policies(runner.manager, upgrade="osa")
        runner.manager.set_downgrade_policy(downgrade_policy(runner.manager.ctx))
    return runner.run()


def main() -> None:
    trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.25), seed=42)
    baseline = run("HDFS-baseline", trace)
    # Replace placement with plain HDFS for the baseline comparison.
    from repro.engine import run_workload

    baseline = run_workload(trace, SystemConfig(label="HDFS", placement="hdfs"))
    lru = run("LRU", trace, downgrade_name="lru")
    gds = run("GDS", trace, downgrade_policy=GreedyDualSizePolicy)

    print(f"{'policy':<6} {'HR':>6} {'BHR':>6}  mean completion reduction")
    for label, result in (("LRU", lru), ("GDS", gds)):
        gains = completion_reduction(baseline.metrics, result.metrics)
        mean = sum(gains.values()) / len(gains)
        print(
            f"{label:<6} {result.metrics.hit_ratio():>6.2f} "
            f"{result.metrics.byte_hit_ratio():>6.2f}  {mean:5.1f}%"
        )


if __name__ == "__main__":
    main()
