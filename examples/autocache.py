"""AutoCache: the framework managing the HDFS centralized cache.

The same Replication Manager/Monitor that move replicas between tiers
can run the HDFS cache (paper Sec 3.3): upgrades *copy* hot files into
memory on top of their 3 HDD replicas, and downgrades *delete* cached
copies instead of moving them.  This example contrasts the static
centralized cache (caches everything until memory fills, then silently
stops — the paper's Fig 2 flatline) with the automated one that keeps
rotating the cache toward the files being re-read.

Run:  python examples/autocache.py
"""

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB, format_bytes
from repro.core import ReplicationManager, configure_policies
from repro.dfs import DFSClient, Master, NodeManager
from repro.dfs.placement import HdfsCachePlacementPolicy, HdfsPlacementPolicy
from repro.sim import Simulator


def build(cache_mode: bool):
    sim = Simulator()
    topology = build_local_cluster(num_workers=4, memory_per_node=1 * GB)
    nm = NodeManager(topology)
    if cache_mode:
        conf = Configuration(
            {"manager.cache_mode": True, "downgrade.action": "delete"}
        )
        master = Master(topology, HdfsPlacementPolicy(topology, nm, conf), sim, conf)
        manager = ReplicationManager(master, sim, conf)
        configure_policies(manager, downgrade="lru", upgrade="osa")
    else:
        conf = Configuration()
        master = Master(
            topology, HdfsCachePlacementPolicy(topology, nm, conf), sim, conf
        )
        manager = None
    return sim, master, DFSClient(master), manager


def drive(sim, master, client) -> float:
    """Write + re-read a rotating working set; return the memory hit rate."""
    hits = reads = 0
    for i in range(30):
        client.create(f"/data/f{i:02d}.bin", 256 * MB)
        # Re-read a recent window of files: the live working set.
        for j in range(max(0, i - 2), i + 1):
            path = f"/data/f{j:02d}.bin"
            file = master.get_file(path)
            reads += 1
            if master.blocks.file_has_tier(file, StorageTier.MEMORY):
                hits += 1
            client.open(path)
        sim.run(until=sim.now() + 60)
    sim.run(until=sim.now() + 300)
    return hits / reads


def main() -> None:
    sim, master, client, _ = build(cache_mode=False)
    static_hr = drive(sim, master, client)
    static_mem = master.tier_used(StorageTier.MEMORY)

    sim, master, client, manager = build(cache_mode=True)
    auto_hr = drive(sim, master, client)
    auto_mem = master.tier_used(StorageTier.MEMORY)

    print("static HDFS cache (caches at write until memory fills):")
    print(f"  memory-location hit rate: {static_hr:.1%}")
    print(f"  memory in use at end:     {format_bytes(static_mem)}")
    print("AutoCache (admission on access, eviction by deletion):")
    print(f"  memory-location hit rate: {auto_hr:.1%}")
    print(f"  memory in use at end:     {format_bytes(auto_mem)}")
    print(
        f"  cached {format_bytes(manager.monitor.bytes_upgraded[StorageTier.MEMORY])}, "
        f"evicted {format_bytes(manager.monitor.bytes_deleted[StorageTier.MEMORY])}"
    )
    if auto_hr > static_hr:
        print("-> the automated cache keeps serving the live working set "
              "after the static cache has flatlined")


if __name__ == "__main__":
    main()
