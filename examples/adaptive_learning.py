"""Adaptive learning: the access model tracking a changing workload.

Replays an FB-style observation stream into three learners — the
incremental default, an hourly retrainer, and a one-shot model — then
switches to the CMU-style stream mid-way (the Fig 17 scenario) and
prints each learner's hourly prediction accuracy.  The incremental
learner dips at the switch and recovers; the one-shot learner never
does.

Run:  python examples/adaptive_learning.py
"""

import numpy as np

from repro.common.units import HOURS
from repro.experiments.common import ExperimentScale, make_trace
from repro.experiments.datasets import generate_observation_stream, shift_timestamps
from repro.experiments.learning_modes import REPLAY_GBT, hourly_accuracy
from repro.ml.access_model import FileAccessModel, LearningMode

#: Quarter-scale traces keep this example under ~20 seconds.
SCALE = ExperimentScale(workload_scale=0.25)
WINDOW = 1 * HOURS


def build_switching_stream():
    """FB for 6 simulated hours, then CMU for the next 6."""
    fb = generate_observation_stream(make_trace("FB", SCALE), window=WINDOW)
    cmu = generate_observation_stream(make_trace("CMU", SCALE), window=WINDOW)
    return sorted(fb + shift_timestamps(cmu, 6 * HOURS), key=lambda p: p.timestamp)


def replay(points, mode: LearningMode) -> FileAccessModel:
    model = FileAccessModel(
        window=WINDOW, mode=mode, gbt_params=REPLAY_GBT, eval_every=5
    )
    trained_once = False
    next_retrain = points[0].timestamp + 1 * HOURS
    for point in points:
        if mode is LearningMode.RETRAIN and point.timestamp >= next_retrain:
            model.retrain()
            next_retrain += 1 * HOURS
        elif (
            mode is LearningMode.ONESHOT
            and not trained_once
            and point.timestamp >= next_retrain
        ):
            trained_once = model.train_now()
        model.add_point(point)
    return model


def main() -> None:
    stream = build_switching_stream()
    print(f"replaying {len(stream)} observations; workload switches at hour 6\n")
    header = "learner        " + "".join(f"  h{i + 1:<3}" for i in range(12))
    print(header)
    print("-" * len(header))
    for mode in LearningMode:
        model = replay(stream, mode)
        series = hourly_accuracy(model.accuracy_history, 12 * HOURS)
        cells = "".join(
            f"  {v:3.0f} " if not np.isnan(v) else "    - " for v in series
        )
        print(f"{mode.value:<15}{cells}")
    print(
        "\nThe switch at hour 6 changes the feature->label relationship; "
        "only learners that keep training recover."
    )


if __name__ == "__main__":
    main()
