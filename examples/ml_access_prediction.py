"""Train the file-access model online and inspect its predictions.

Generates the observation stream a live cluster would produce for the FB
workload, feeds it to the incremental gradient-boosted-tree model
(paper Sec 4), and reports the rolling accuracy, the ROC AUC on held-out
data, and which features the trees rely on.

Run:  python examples/ml_access_prediction.py
"""


from repro.common.units import HOURS
from repro.experiments.datasets import (
    generate_observation_stream,
    split_by_time,
    to_arrays,
)
from repro.ml import (
    FileAccessModel,
    GradientBoostedTrees,
    auc,
    feature_names,
)
from repro.ml.access_model import PAPER_GBT_PARAMS
from repro.workload import FB_PROFILE, synthesize_trace


def main() -> None:
    trace = synthesize_trace(FB_PROFILE, seed=42, drift=False)
    print(f"trace: {len(trace.jobs)} jobs over {trace.duration / HOURS:.0f} hours")

    # --- online incremental learning, as the live system does ----------
    window = 1 * HOURS  # the downgrade model's class window
    points = generate_observation_stream(trace, window=window)
    model = FileAccessModel(window=window)
    for point in points:
        model.add_point(point)
    print(
        f"online model: {model.points_seen} observations, "
        f"{model.trainings} incremental trainings, "
        f"rolling error {model.rolling_error_rate:.3f}, ready={model.ready}"
    )

    # --- offline evaluation with the paper's temporal split -------------
    train, _val, test = split_by_time(points, boundaries=(4 * HOURS, 5 * HOURS))
    X_train, y_train = to_arrays(train)
    X_test, y_test = to_arrays(test)
    offline = GradientBoostedTrees(PAPER_GBT_PARAMS).fit(X_train, y_train)
    probs = offline.predict_proba(X_test)
    print(f"held-out AUC: {auc(y_test, probs):.4f} on {len(y_test)} test points")

    # --- which features carry the signal? --------------------------------
    names = feature_names(model.spec)
    usage = offline.feature_usage()
    ranked = sorted(zip(names, usage), key=lambda item: -item[1])[:5]
    print("top features by split count:")
    for name, count in ranked:
        print(f"  {name:<30} {count}")

    # --- a concrete prediction on real trace files ------------------------
    # Hot: the trace file most accessed in the final two hours; cold: a
    # file untouched since the first hour.  Featurized at mid-trace so
    # "soon" is meaningful.
    now = 4 * HOURS
    histories = _access_histories(trace)
    hot_path = max(
        histories,
        key=lambda p: sum(now - 7200.0 <= t < now for t in histories[p][2]),
    )
    cold_candidates = [
        p
        for p, (_, created, accesses) in histories.items()
        if created < HOURS and all(t < HOURS for t in accesses)
    ]
    cold_path = cold_candidates[0] if cold_candidates else hot_path
    hot = offline.predict_one(_features(model, *histories[hot_path], now))
    cold = offline.predict_one(_features(model, *histories[cold_path], now))
    print(
        f"P(access soon) hot file ({hot_path}): {hot:.2f}   "
        f"cold file ({cold_path}): {cold:.2f}"
    )


def _access_histories(trace):
    """path -> (size, creation time, sorted access times)."""
    histories = {}
    for creation in trace.creations:
        histories[creation.path] = (creation.size, max(creation.time, 0.0), [])
    for job in sorted(trace.jobs, key=lambda j: j.submit_time):
        for path in job.input_paths:
            if path in histories:
                histories[path][2].append(job.submit_time)
    return histories


def _features(model, size, creation, accesses, now):
    from repro.ml.features import build_feature_vector

    past = [t for t in accesses if t <= now][-12:]
    return build_feature_vector(model.spec, size, creation, past, now)


if __name__ == "__main__":
    main()
