"""DFSIO throughput across the four storage systems (paper Fig 2).

Writes and reads back a configurable volume on the simulated 12-node
cluster under original HDFS, HDFS-with-cache, OctopusFS, and Octopus++,
printing the per-node throughput curves so the memory-exhaustion knee is
visible.

Run:  python examples/dfsio_throughput.py [--gb 42]
"""

import argparse

from repro.common.units import GB
from repro.experiments.fig02_dfsio import render_fig02, run_fig02


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--gb",
        type=int,
        default=84,
        help="total data volume to write and read back (default: 84, as in the paper)",
    )
    parser.add_argument("--workers", type=int, default=11)
    args = parser.parse_args()

    result = run_fig02(total_bytes=args.gb * GB, workers=args.workers)
    print(render_fig02(result))
    print()
    print(
        "Note the knee once aggregate memory "
        f"({args.workers * 4}GB) fills: OctopusFS placement degrades, while "
        "Octopus++ keeps writing new data to memory by proactively "
        "downgrading cold replicas."
    )


if __name__ == "__main__":
    main()
