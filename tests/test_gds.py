"""Tests for the Greedy-Dual-Size downgrade policy (Sec 2.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager, configure_policies
from repro.core.gds import GreedyDualSizeDowngradePolicy
from repro.dfs import DFSClient, Master, NodeManager, OctopusPlacementPolicy
from repro.sim import Simulator


@pytest.fixture
def stack():
    sim = Simulator()
    topo = build_local_cluster(num_workers=3, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    master = Master(topo, OctopusPlacementPolicy(topo, nm, Configuration()), sim)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim)
    return sim, master, client, manager


class TestCredits:
    def test_uniform_cost_favors_evicting_large_files(self, stack):
        sim, master, client, manager = stack
        policy = GreedyDualSizeDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        client.create("/big", 512 * MB)
        client.create("/small", 32 * MB)
        # Same generation (inflation 0): big has the lower 1/size credit.
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected.path == "/big"

    def test_access_refreshes_credit_above_inflation(self, stack):
        sim, master, client, manager = stack
        policy = GreedyDualSizeDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        client.create("/a", 128 * MB)
        client.create("/b", 128 * MB)
        first = policy.select_file_to_downgrade(StorageTier.MEMORY)
        # After one eviction the inflation rose; a re-access re-credits
        # the survivor above any same-size untouched file.
        survivor = "/a" if first.path == "/b" else "/b"
        client.open(survivor)
        client.create("/c", 128 * MB)
        client.open("/c")
        # /c and the survivor have equal credits now (same size, same
        # inflation) so the tie-break picks the lower inode id, which is
        # the survivor; re-access the survivor later to distinguish.
        sim.run(until=sim.now() + 1)
        client.open(survivor)
        assert policy.credit(master.get_file(survivor)) >= policy.credit(
            master.get_file("/c")
        )

    def test_inflation_monotone_over_evictions(self, stack):
        sim, master, client, manager = stack
        policy = GreedyDualSizeDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        for i in range(8):
            client.create(f"/f{i}", (16 + 16 * i) * MB)
        seen = [policy.inflation]
        for _ in range(6):
            victim = policy.select_file_to_downgrade(StorageTier.MEMORY)
            assert victim is not None
            # Simulate the downgrade finishing: drop from memory so the
            # candidate set shrinks.
            for block in master.blocks.blocks_of(victim):
                for replica in list(block.replicas_on_tier(StorageTier.MEMORY)):
                    master.delete_replica(replica)
            seen.append(policy.inflation)
        assert seen == sorted(seen)

    def test_deleted_file_forgotten(self, stack):
        sim, master, client, manager = stack
        policy = GreedyDualSizeDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        client.create("/a", 64 * MB)
        client.delete("/a")
        assert policy.select_file_to_downgrade(StorageTier.MEMORY) is None

    def test_size_cost_mode_equalizes_credits(self, stack):
        _, master, client, manager = stack
        policy = GreedyDualSizeDowngradePolicy(manager.ctx, cost_mode="size")
        manager.set_downgrade_policy(policy)
        small = client.create("/small", 32 * MB)
        big = client.create("/big", 512 * MB)
        assert policy.credit(small) == pytest.approx(policy.credit(big))

    def test_invalid_cost_mode_rejected(self, stack):
        _, _, _, manager = stack
        with pytest.raises(ValueError):
            GreedyDualSizeDowngradePolicy(manager.ctx, cost_mode="banana")


class TestRegistryIntegration:
    def test_configure_by_name(self, stack):
        _, _, _, manager = stack
        configure_policies(manager, downgrade="gds")
        assert manager.downgrade_policy.name == "gds"

    def test_end_to_end_run(self, stack):
        sim, master, client, manager = stack
        configure_policies(manager, downgrade="gds")
        for i in range(20):
            client.create(f"/f{i}", 256 * MB)
            sim.run(until=sim.now() + 30)
        sim.run(until=sim.now() + 600)
        assert manager.monitor.bytes_downgraded[StorageTier.MEMORY] > 0


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=4096), min_size=2, max_size=12)
)
def test_uniform_credit_ordering_matches_inverse_size(sizes):
    """Within one generation, eviction order is largest-first (property)."""
    sim = Simulator()
    topo = build_local_cluster(num_workers=3, memory_per_node=64 * GB)
    nm = NodeManager(topo)
    master = Master(topo, OctopusPlacementPolicy(topo, nm, Configuration()), sim)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim)
    policy = GreedyDualSizeDowngradePolicy(manager.ctx)
    manager.set_downgrade_policy(policy)
    for i, size in enumerate(sizes):
        client.create(f"/f{i}", size * MB)
    victim = policy.select_file_to_downgrade(StorageTier.MEMORY)
    assert victim.size == max(sizes) * MB
