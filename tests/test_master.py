"""Tests for the Master: creation, reads, deletion, transfers, listeners."""

import pytest

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.errors import InsufficientSpaceError, InvalidPathError
from repro.common.units import GB, MB
from repro.dfs import (
    FileSystemListener,
    Master,
    NodeManager,
    OctopusPlacementPolicy,
)


class RecordingListener(FileSystemListener):
    def __init__(self):
        self.events = []

    def on_file_created(self, file):
        self.events.append(("created", file.path))

    def on_file_accessed(self, file):
        self.events.append(("accessed", file.path))

    def on_file_deleted(self, file):
        self.events.append(("deleted", file.path))

    def on_data_added(self, tier):
        self.events.append(("data", tier))


class TestCreateFile:
    def test_blocks_and_replicas_created(self, master):
        file = master.create_file("/data/a", 300 * MB)
        blocks = master.blocks.blocks_of(file)
        assert [b.size for b in blocks] == [128 * MB, 128 * MB, 44 * MB]
        for block in blocks:
            assert block.replica_count == 3
            assert len(set(block.nodes())) == 3

    def test_octopus_places_one_replica_per_tier(self, master):
        file = master.create_file("/data/a", 128 * MB)
        block = master.blocks.blocks_of(file)[0]
        assert set(block.tiers()) == {
            StorageTier.MEMORY,
            StorageTier.SSD,
            StorageTier.HDD,
        }

    def test_custom_replication(self, master):
        file = master.create_file("/data/a", 64 * MB, replication=2)
        assert master.blocks.blocks_of(file)[0].replica_count == 2

    def test_zero_byte_file(self, master):
        file = master.create_file("/data/zero", 0)
        assert master.blocks.blocks_of(file) == []

    def test_listener_order_created_then_data(self, master):
        listener = RecordingListener()
        master.add_listener(listener)
        master.create_file("/x", 64 * MB)
        kinds = [e[0] for e in listener.events]
        assert kinds[0] == "created"
        assert set(kinds[1:]) == {"data"}

    def test_rollback_on_insufficient_space(self, sim):
        # Cluster with a single tiny node: file larger than everything.
        topo = build_local_cluster(num_workers=1, memory_per_node=64 * MB,
                                   ssd_per_node=64 * MB, hdd_per_node=128 * MB)
        nm = NodeManager(topo)
        master = Master(topo, OctopusPlacementPolicy(topo, nm, Configuration()), sim)
        with pytest.raises(InsufficientSpaceError):
            master.create_file("/big", 10 * GB)
        assert not master.exists("/big")
        assert all(d.used == 0 for n in topo.nodes for d in n.devices())


class TestReadFile:
    def test_read_plan_covers_all_blocks(self, master):
        master.create_file("/f", 300 * MB)
        plan = master.read_file("/f")
        assert len(plan.reads) == 3
        assert plan.total_bytes == 300 * MB

    def test_reads_prefer_memory_without_reader_context(self, master):
        master.create_file("/f", 128 * MB)
        plan = master.read_file("/f")
        assert plan.reads[0].replica.tier is StorageTier.MEMORY
        assert plan.memory_access

    def test_memory_location_flag(self, master):
        master.create_file("/f", 128 * MB)
        plan = master.read_file("/f")
        assert plan.memory_location  # octopus put one replica in memory

    def test_local_replica_preferred_over_faster_remote(self, master):
        file = master.create_file("/f", 64 * MB)
        block = master.blocks.blocks_of(file)[0]
        hdd_replica = block.replicas_on_tier(StorageTier.HDD)[0]
        read = master.choose_replica(block, hdd_replica.node_id)
        assert read.local
        assert read.replica.node_id == hdd_replica.node_id

    def test_access_listener_fires_before_read(self, master):
        listener = RecordingListener()
        master.create_file("/f", 64 * MB)
        master.add_listener(listener)
        master.read_file("/f")
        assert ("accessed", "/f") in listener.events

    def test_missing_file_raises(self, master):
        with pytest.raises(InvalidPathError):
            master.read_file("/missing")

    def test_bytes_by_tier_accounting(self, master):
        master.create_file("/f", 128 * MB)
        plan = master.read_file("/f")
        by_tier = plan.bytes_by_tier()
        assert by_tier[StorageTier.MEMORY] == 128 * MB


class TestDeleteFile:
    def test_delete_releases_space(self, master):
        master.create_file("/f", 256 * MB)
        used_before = sum(d.used for n in master.topology.nodes for d in n.devices())
        assert used_before > 0
        master.delete_file("/f")
        assert sum(d.used for n in master.topology.nodes for d in n.devices()) == 0
        assert not master.exists("/f")

    def test_delete_notifies(self, master):
        listener = RecordingListener()
        master.create_file("/f", 64 * MB)
        master.add_listener(listener)
        master.delete_file("/f")
        assert ("deleted", "/f") in listener.events

    def test_get_file_by_id(self, master):
        file = master.create_file("/f", 64 * MB)
        assert master.get_file_by_id(file.inode_id) is file
        master.delete_file("/f")
        with pytest.raises(KeyError):
            master.get_file_by_id(file.inode_id)


class TestTransfers:
    def _mem_replica(self, master):
        file = master.create_file("/f", 128 * MB)
        block = master.blocks.blocks_of(file)[0]
        return block, block.replicas_on_tier(StorageTier.MEMORY)[0]

    def test_move_commit(self, master):
        block, replica = self._mem_replica(master)
        target = master.placement.select_transfer_target(
            block, replica, [StorageTier.SSD]
        )
        ticket = master.begin_transfer(block, replica, target)
        new_replica = master.commit_transfer(ticket)
        assert new_replica.tier is StorageTier.SSD
        assert replica.replica_id not in block.replicas
        assert block.replica_count == 3  # moved, not duplicated
        assert master.open_ticket_count() == 0

    def test_reservation_holds_space(self, master):
        block, replica = self._mem_replica(master)
        target = master.placement.select_transfer_target(
            block, replica, [StorageTier.SSD]
        )
        node = master.topology.node(target.node_id)
        device = next(
            d for d in node.devices(target.tier) if d.device_id == target.device_id
        )
        used_before = device.used
        ticket = master.begin_transfer(block, replica, target)
        assert device.used == used_before + block.size
        master.abort_transfer(ticket)
        assert device.used == used_before

    def test_copy_keeps_source(self, master):
        block, replica = self._mem_replica(master)
        target = master.placement.select_copy_target(block, [StorageTier.HDD])
        ticket = master.begin_transfer(block, None, target)
        master.commit_transfer(ticket)
        assert block.replica_count == 4
        assert replica.replica_id in block.replicas

    def test_double_commit_rejected(self, master):
        block, replica = self._mem_replica(master)
        target = master.placement.select_transfer_target(
            block, replica, [StorageTier.SSD]
        )
        ticket = master.begin_transfer(block, replica, target)
        master.commit_transfer(ticket)
        with pytest.raises(InvalidPathError):
            master.commit_transfer(ticket)

    def test_transfer_counts_node_load(self, master):
        block, replica = self._mem_replica(master)
        target = master.placement.select_transfer_target(
            block, replica, [StorageTier.SSD]
        )
        ticket = master.begin_transfer(block, replica, target)
        assert master.node_manager.stats(target.node_id).active_transfers >= 1
        master.commit_transfer(ticket)
        assert master.node_manager.stats(target.node_id).active_transfers == 0


class TestDecommission:
    def test_replicas_dropped(self, master):
        master.create_file("/f", 128 * MB)
        victim = None
        for node in master.topology.nodes:
            if node.total_used() > 0:
                victim = node
                break
        lost = master.decommission_node(victim.node_id)
        assert lost >= 1
        assert victim.total_used() == 0
