"""Deeper scheduler behaviour tests: slots, outputs, ordering."""


from repro.common.units import MB
from repro.engine import SystemConfig, WorkloadRunner
from repro.workload import FileCreation, OutputSpec, Trace, TraceJob


def run_trace(trace, **config_kw):
    defaults = dict(label="t", placement="octopus", workers=2, task_slots=2)
    defaults.update(config_kw)
    runner = WorkloadRunner(trace, SystemConfig(**defaults))
    return runner, runner.run()


class TestSlots:
    def test_slot_count_never_negative(self):
        trace = Trace(name="t", duration=50.0)
        trace.creations = [FileCreation(f"/f{i}", 128 * MB, 0.0) for i in range(8)]
        trace.jobs = [
            TraceJob(i, 1.0, [f"/f{i}"], 128 * MB, [], cpu_seconds_per_byte=1e-8)
            for i in range(8)
        ]
        runner, result = run_trace(trace)
        assert result.jobs_finished == 8
        for node in runner.topology.nodes:
            slots = runner.scheduler.free_slots(node.node_id)
            assert 0 <= slots <= node.task_slots
            assert slots == node.task_slots  # all released at the end

    def test_jobs_complete_in_bounded_time(self):
        trace = Trace(name="t", duration=10.0)
        trace.creations = [FileCreation("/f", 256 * MB, 0.0)]
        trace.jobs = [TraceJob(0, 1.0, ["/f"], 256 * MB, [], cpu_seconds_per_byte=1e-8)]
        _, result = run_trace(trace)
        mean = result.metrics.bins["B"].mean_completion_time
        assert 0 < mean < 120.0


class TestOutputs:
    def test_outputs_start_after_maps(self):
        trace = Trace(name="t", duration=100.0)
        trace.creations = [FileCreation("/in", 256 * MB, 0.0)]
        trace.jobs = [
            TraceJob(
                0,
                1.0,
                ["/in"],
                256 * MB,
                [OutputSpec("/out", 64 * MB)],
                cpu_seconds_per_byte=1e-7,
            )
        ]
        runner, result = run_trace(trace)
        assert runner.master.exists("/out")
        out_created = runner.master.get_file("/out").creation_time
        # Map tasks read 2 blocks first; the output cannot appear at t=1.
        assert out_created > 1.0

    def test_multiple_outputs_all_written(self):
        trace = Trace(name="t", duration=100.0)
        trace.creations = [FileCreation("/in", 64 * MB, 0.0)]
        outputs = [OutputSpec(f"/out{i}", 16 * MB) for i in range(3)]
        trace.jobs = [
            TraceJob(0, 1.0, ["/in"], 64 * MB, outputs, cpu_seconds_per_byte=1e-8)
        ]
        runner, result = run_trace(trace)
        for spec in outputs:
            assert runner.master.exists(spec.path)
        assert result.metrics.bytes_written == 48 * MB

    def test_job_without_outputs_finishes_after_maps(self):
        trace = Trace(name="t", duration=100.0)
        trace.creations = [FileCreation("/in", 64 * MB, 0.0)]
        trace.jobs = [TraceJob(0, 1.0, ["/in"], 64 * MB, [], cpu_seconds_per_byte=1e-8)]
        _, result = run_trace(trace)
        assert result.jobs_finished == 1

    def test_job_with_only_missing_inputs_still_completes(self):
        trace = Trace(name="t", duration=100.0)
        trace.jobs = [
            TraceJob(0, 1.0, ["/ghost"], 64 * MB, [OutputSpec("/out", MB)],
                     cpu_seconds_per_byte=1e-8)
        ]
        runner, result = run_trace(trace)
        assert result.jobs_finished == 1
        assert runner.master.exists("/out")


class TestMetricsConsistency:
    def test_task_reads_match_block_count(self):
        trace = Trace(name="t", duration=100.0)
        trace.creations = [FileCreation("/in", 300 * MB, 0.0)]
        trace.jobs = [
            TraceJob(0, 1.0, ["/in"], 300 * MB, [], cpu_seconds_per_byte=1e-8),
            TraceJob(1, 30.0, ["/in"], 300 * MB, [], cpu_seconds_per_byte=1e-8),
        ]
        _, result = run_trace(trace)
        # 3 blocks x 2 jobs.
        assert result.metrics.task_reads == 6
        assert result.metrics.bytes_read == 2 * 300 * MB

    def test_file_access_records_match_jobs(self):
        trace = Trace(name="t", duration=100.0)
        trace.creations = [FileCreation("/in", 64 * MB, 0.0)]
        trace.jobs = [
            TraceJob(i, float(i + 1), ["/in"], 64 * MB, [], cpu_seconds_per_byte=1e-8)
            for i in range(4)
        ]
        _, result = run_trace(trace)
        assert result.metrics.file_accesses == 4
