"""Tests for the related-work extension policies."""

import pytest

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager, configure_policies
from repro.core.extra_policies import (
    ArcLikeDowngradePolicy,
    MarkerOracleDowngradePolicy,
    RandomDowngradePolicy,
    SizeDowngradePolicy,
)
from repro.dfs import DFSClient, Master, NodeManager, OctopusPlacementPolicy
from repro.sim import Simulator


@pytest.fixture
def stack():
    sim = Simulator()
    topo = build_local_cluster(num_workers=3, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    master = Master(topo, OctopusPlacementPolicy(topo, nm, Configuration()), sim)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim)
    return sim, master, client, manager


def create(client, sim, specs):
    for path, size in specs:
        sim.run(until=sim.now() + 1)
        client.create(path, size)


class TestRandomPolicy:
    def test_selects_some_candidate(self, stack):
        sim, master, client, manager = stack
        policy = RandomDowngradePolicy(manager.ctx, seed=1)
        manager.set_downgrade_policy(policy)
        create(client, sim, [("/a", 64 * MB), ("/b", 64 * MB)])
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected.path in ("/a", "/b")

    def test_deterministic_with_seed(self, stack):
        sim, master, client, manager = stack
        create(client, sim, [(f"/f{i}", 32 * MB) for i in range(6)])
        a = RandomDowngradePolicy(manager.ctx, seed=5)
        b = RandomDowngradePolicy(manager.ctx, seed=5)
        assert (
            a.select_file_to_downgrade(StorageTier.MEMORY).path
            == b.select_file_to_downgrade(StorageTier.MEMORY).path
        )

    def test_empty_tier(self, stack):
        _, _, _, manager = stack
        policy = RandomDowngradePolicy(manager.ctx)
        assert policy.select_file_to_downgrade(StorageTier.MEMORY) is None


class TestSizePolicy:
    def test_largest_first(self, stack):
        sim, master, client, manager = stack
        policy = SizeDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create(
            client, sim, [("/small", 32 * MB), ("/big", 256 * MB), ("/mid", 64 * MB)]
        )
        assert policy.select_file_to_downgrade(StorageTier.MEMORY).path == "/big"


class TestArcPolicy:
    def test_single_access_files_evicted_before_reaccessed(self, stack):
        sim, master, client, manager = stack
        policy = ArcLikeDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create(client, sim, [("/once", 64 * MB), ("/twice", 64 * MB)])
        client.open("/twice")
        client.open("/twice")  # promoted to the frequency list
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected.path == "/once"

    def test_ghost_hit_adapts_balance(self, stack):
        sim, master, client, manager = stack
        policy = ArcLikeDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create(client, sim, [("/a", 64 * MB), ("/b", 64 * MB)])
        p_before = policy.p
        evicted = policy.select_file_to_downgrade(StorageTier.MEMORY)
        # Re-access the evicted (ghosted) file: recency ghost hit.
        client.open(evicted.path)
        assert policy.p != p_before

    def test_deleted_files_leave_all_lists(self, stack):
        sim, master, client, manager = stack
        policy = ArcLikeDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create(client, sim, [("/a", 64 * MB)])
        client.delete("/a")
        assert policy.select_file_to_downgrade(StorageTier.MEMORY) is None

    def test_runs_end_to_end(self, stack):
        sim, master, client, manager = stack
        configure_policies(manager, downgrade="arc")
        for i in range(20):
            client.create(f"/f{i}", 256 * MB)
            sim.run(until=sim.now() + 30)
        sim.run(until=sim.now() + 600)
        assert manager.monitor.bytes_downgraded[StorageTier.MEMORY] > 0


class TestMarkerPolicy:
    def test_unmarked_evicted_first(self, stack):
        sim, master, client, manager = stack
        configure_policies(manager, downgrade="marker")
        policy = manager.downgrade_policy
        assert isinstance(policy, MarkerOracleDowngradePolicy)
        create(client, sim, [("/hot", 64 * MB), ("/cold", 64 * MB)])
        client.open("/hot")  # marks /hot
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected.path == "/cold"

    def test_phase_change_clears_marks(self, stack):
        sim, master, client, manager = stack
        configure_policies(manager, downgrade="marker")
        policy = manager.downgrade_policy
        create(client, sim, [("/a", 64 * MB), ("/b", 64 * MB)])
        client.open("/a")
        client.open("/b")  # everything marked
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected is not None  # new phase began
        assert len(policy._marked) == 0 or selected.inode_id not in policy._marked


class TestRegistryIntegration:
    @pytest.mark.parametrize("name", ["random", "size", "arc", "marker"])
    def test_configure_by_name(self, stack, name):
        _, _, _, manager = stack
        configure_policies(manager, downgrade=name)
        assert manager.downgrade_policy is not None
        assert manager.downgrade_policy.name == name
