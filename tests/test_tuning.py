"""Tests for the Sec 4.3 hyperparameter grid-search harness."""

import numpy as np
import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.tuning import (
    GridCell,
    TuningResult,
    render_tuning,
    run_tuning,
    select_operating_point,
)

SMALL = ExperimentScale(workload_scale=0.2)


def cell(workload, d, r, auc_value, cost):
    return GridCell(
        workload=workload,
        max_depth=d,
        num_rounds=r,
        auc=auc_value,
        accuracy=0.9,
        train_seconds=cost,
        trees_nodes=100,
    )


class TestSelection:
    def test_prefers_cheapest_within_tolerance(self):
        result = TuningResult(
            cells=[
                cell("FB", 20, 10, 0.970, 2.0),
                cell("FB", 8, 10, 0.968, 0.5),
                cell("FB", 4, 5, 0.900, 0.1),
            ]
        )
        assert select_operating_point(result, tolerance=0.005) == (8, 10)

    def test_strict_tolerance_takes_the_best(self):
        result = TuningResult(
            cells=[
                cell("FB", 20, 10, 0.970, 2.0),
                cell("FB", 8, 10, 0.960, 0.5),
            ]
        )
        assert select_operating_point(result, tolerance=0.0) == (20, 10)

    def test_means_average_over_workloads(self):
        result = TuningResult(
            cells=[
                cell("FB", 20, 10, 0.90, 1.0),
                cell("CMU", 20, 10, 0.80, 3.0),
            ]
        )
        assert result.mean_auc()[(20, 10)] == pytest.approx(0.85)
        assert result.mean_cost()[(20, 10)] == pytest.approx(2.0)


class TestGridRun:
    def test_small_grid_runs_and_renders(self):
        result = run_tuning(depths=(4, 12), rounds=(5,), scale=SMALL)
        # 2 workloads x 2 depths x 1 rounds.
        assert len(result.cells) == 4
        assert all(0.0 <= c.auc <= 1.0 for c in result.cells)
        assert all(c.train_seconds > 0 for c in result.cells)
        assert result.selected in {(4, 5), (12, 5)}
        table = render_tuning(result)
        assert "selected" in table
        assert "Sec 4.3" in table

    def test_deeper_trees_have_more_nodes(self):
        result = run_tuning(depths=(2, 12), rounds=(5,), scale=SMALL)
        by_depth = {}
        for c in result.cells:
            by_depth.setdefault(c.max_depth, []).append(c.trees_nodes)
        assert np.mean(by_depth[2]) <= np.mean(by_depth[12])
