"""Tests for live stream replay (pipes, sockets, reorder handling)."""

import gzip
import json
import os
import socket
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.runner import SystemConfig, WorkloadRunner
from repro.workload.external import ExternalTraceStream
from repro.workload.jobs import FileCreation, TraceJob, event_time
from repro.workload.live import LiveStream, open_live_source
from repro.workload.scenarios import build_scenario
from repro.workload.serialize import event_to_dict, save_events
from repro.workload.streams import StreamOrderError


def jsonl(*records, header=True, end=False, trailing_newline=True):
    lines = []
    if header:
        lines.append(json.dumps({"kind": "header", "format_version": 1}))
    lines.extend(json.dumps(r) for r in records)
    if end:
        lines.append(json.dumps({"kind": "end"}))
    text = "\n".join(lines)
    return text + "\n" if trailing_newline and lines else text


def create(t, path="/data/a", size=1024):
    return {"kind": "create", "time": t, "path": path, "bytes": size}


def job(t, paths=("/data/a",)):
    return {"kind": "job", "time": t, "inputs": list(paths)}


def write(tmp_path, text, name="live.jsonl"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestDecoding:
    def test_header_picked_up(self, tmp_path):
        text = jsonl(create(1.0), header=False)
        header = json.dumps(
            {"kind": "header", "format_version": 1, "name": "x", "duration": 9.0}
        )
        stream = LiveStream(write(tmp_path, header + "\n" + text))
        assert stream.name == "x"
        assert stream.duration == 9.0
        assert len(list(stream.events())) == 1

    def test_headerless_stream_infinite_duration(self, tmp_path):
        stream = LiveStream(write(tmp_path, jsonl(create(1.0), header=False)))
        assert stream.duration == float("inf")
        assert len(list(stream.events())) == 1

    def test_empty_stream(self, tmp_path):
        stream = LiveStream(write(tmp_path, ""))
        assert list(stream.events()) == []
        assert stream.live_stats.events_received == 0

    def test_header_only_stream(self, tmp_path):
        stream = LiveStream(write(tmp_path, jsonl()))
        assert list(stream.events()) == []

    def test_blank_line_keepalives_skipped(self, tmp_path):
        # Long runs of blank lines (producer keepalives) must not
        # recurse; 5000 of them would blow the default recursion limit.
        text = jsonl(create(1.0)) + "\n" * 5000 + json.dumps(job(2.0)) + "\n"
        stream = LiveStream(write(tmp_path, text))
        assert len(list(stream.events())) == 2

    def test_end_sentinel_stops_stream(self, tmp_path):
        # Records after the sentinel must not be consumed.
        text = jsonl(create(1.0), end=True) + jsonl(create(99.0), header=False)
        stream = LiveStream(write(tmp_path, text))
        events = list(stream.events())
        assert [event_time(e) for e in events] == [1.0]
        assert stream.live_stats.end_sentinel_seen

    @staticmethod
    def pipe_stream(text):
        """A LiveStream fed the exact bytes of ``text`` through a pipe."""
        read_fd, write_fd = os.pipe()

        def produce():
            with os.fdopen(write_fd, "w") as sink:
                sink.write(text)

        producer = threading.Thread(target=produce)
        producer.start()
        return LiveStream(os.fdopen(read_fd, "r")), producer

    def test_truncated_pipe_mid_record_rejected(self):
        # The producer died mid-record: final line has no newline.
        text = jsonl(create(1.0)) + '{"kind": "job", "time": 2.0, "inp'
        stream, producer = self.pipe_stream(text)
        try:
            with pytest.raises(ValueError, match="truncated"):
                list(stream.events())
        finally:
            producer.join()

    def test_complete_but_unterminated_pipe_record_rejected(self):
        # Even valid JSON without its newline cannot be trusted complete
        # on a pipe — the producer may have died mid-write.
        text = jsonl(create(1.0)) + json.dumps(create(2.0))
        stream, producer = self.pipe_stream(text)
        try:
            with pytest.raises(ValueError, match="truncated"):
                list(stream.events())
        finally:
            producer.join()

    def test_unterminated_final_record_accepted_from_file(self, tmp_path):
        # On a seekable regular file EOF is unambiguous: a missing final
        # newline (printf/echo -n producers) is not a truncation.
        text = jsonl(create(1.0)) + json.dumps(create(2.0))
        stream = LiveStream(write(tmp_path, text))
        assert len(list(stream.events())) == 2

    def test_corrupt_final_record_in_file_rejected(self, tmp_path):
        # Seekable leniency covers the newline, not broken JSON.
        text = jsonl(create(1.0)) + '{"kind": "job", "time": 2.0, "inp'
        stream = LiveStream(write(tmp_path, text))
        with pytest.raises(ValueError, match="corrupt"):
            list(stream.events())

    def test_corrupt_record_rejected(self, tmp_path):
        text = jsonl(create(1.0)) + "not json at all\n"
        stream = LiveStream(write(tmp_path, text))
        with pytest.raises(ValueError, match="corrupt"):
            list(stream.events())

    def test_single_shot(self, tmp_path):
        stream = LiveStream(write(tmp_path, jsonl(create(1.0))))
        list(stream.events())
        with pytest.raises(ValueError, match="single-shot"):
            stream.events()

    def test_bad_late_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="late policy"):
            LiveStream(write(tmp_path, ""), late="ignore")


class TestReordering:
    def out_of_order(self):
        return jsonl(
            create(0.0, "/data/a"),
            job(5.0),
            create(3.0, "/data/b"),  # out of order, within any sane bound
            job(8.0),
        )

    def test_within_bound_resorted(self, tmp_path):
        stream = LiveStream(write(tmp_path, self.out_of_order()))
        times = [event_time(e) for e in stream.events()]
        assert times == sorted(times) == [0.0, 3.0, 5.0, 8.0]
        stats = stream.live_stats
        assert stats.events_late == 0
        # The t=3 creation arrived after t=5 had been seen: one genuine
        # disorder of 2 simulated seconds, absorbed by the buffer.
        assert stats.events_reordered == 1
        assert stats.max_disorder_seconds == 2.0

    def test_in_order_stream_reports_no_disorder(self, tmp_path):
        records = [create(float(i), f"/data/f{i}") for i in range(10)]
        stream = LiveStream(write(tmp_path, jsonl(*records)), reorder_depth=4)
        list(stream.events())
        assert stream.live_stats.events_reordered == 0
        assert stream.live_stats.max_disorder_seconds == 0.0

    def test_beyond_bound_clamped(self, tmp_path):
        # Depth 0: nothing is buffered, so the t=3 creation arrives
        # after t=5 was emitted and gets clamped onto the output clock.
        stream = LiveStream(write(tmp_path, self.out_of_order()), reorder_depth=0)
        events = list(stream.events())
        times = [event_time(e) for e in events]
        assert times == [0.0, 5.0, 5.0, 8.0]
        assert isinstance(events[2], FileCreation)
        stats = stream.live_stats
        assert stats.events_late == stats.events_clamped == 1
        assert stats.events_dropped == 0

    def test_beyond_bound_dropped(self, tmp_path):
        stream = LiveStream(
            write(tmp_path, self.out_of_order()), reorder_depth=0, late="drop"
        )
        events = list(stream.events())
        assert [event_time(e) for e in events] == [0.0, 5.0, 8.0]
        assert stream.live_stats.events_dropped == 1

    def test_beyond_bound_error(self, tmp_path):
        stream = LiveStream(
            write(tmp_path, self.out_of_order()), reorder_depth=0, late="error"
        )
        with pytest.raises(StreamOrderError, match="reorder bound"):
            list(stream.events())

    def test_clamped_job_keeps_identity(self, tmp_path):
        text = jsonl(create(0.0), job(9.0), job(4.0, ("/data/a",)))
        stream = LiveStream(write(tmp_path, text), reorder_depth=0)
        jobs = [e for e in stream.events() if isinstance(e, TraceJob)]
        assert [j.submit_time for j in jobs] == [9.0, 9.0]
        assert [j.job_id for j in jobs] == [0, 1]

    def test_buffer_depth_tracked(self, tmp_path):
        records = [create(float(i), f"/data/f{i}") for i in range(10)]
        stream = LiveStream(write(tmp_path, jsonl(*records)), reorder_depth=4)
        list(stream.events())
        assert stream.live_stats.max_buffer_depth == 4


class TestTransports:
    def test_gzip_path(self, tmp_path):
        path = tmp_path / "live.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(jsonl(create(1.0), job(2.0)))
        stream = LiveStream(str(path))
        assert len(list(stream.events())) == 2

    def test_gzip_over_pipe(self, tmp_path):
        # gunzip-on-the-fly from a non-seekable pipe, as a socket or
        # FIFO would deliver it.
        payload = gzip.compress(jsonl(create(1.0), job(2.0), end=True).encode())
        read_fd, write_fd = os.pipe()

        def produce():
            with os.fdopen(write_fd, "wb") as sink:
                sink.write(payload)

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            stream = LiveStream(os.fdopen(read_fd, "rb"), compression="gzip")
            assert len(list(stream.events())) == 2
        finally:
            producer.join()

    def test_pipe_incremental_delivery(self):
        # The producer writes one record at a time; the consumer sees
        # them without waiting for EOF (the sentinel ends the stream).
        read_fd, write_fd = os.pipe()

        def produce():
            with os.fdopen(write_fd, "w") as sink:
                sink.write(jsonl())
                sink.flush()
                for i in range(5):
                    sink.write(json.dumps(create(float(i), f"/d/f{i}")) + "\n")
                    sink.flush()
                sink.write(json.dumps({"kind": "end"}) + "\n")

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            stream = LiveStream(os.fdopen(read_fd, "r"))
            assert len(list(stream.events())) == 5
            assert stream.live_stats.end_sentinel_seen
        finally:
            producer.join()

    def test_socket_source(self):
        server, client = socket.socketpair()

        def produce():
            with server.makefile("w") as sink:
                sink.write(jsonl(create(1.0), job(2.0), end=True))
            server.close()

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            stream = LiveStream(client.makefile("rb"))
            assert len(list(stream.events())) == 2
        finally:
            producer.join()
            client.close()

    def test_bad_tcp_spec_rejected(self):
        with pytest.raises(ValueError, match="tcp://host:port"):
            open_live_source("tcp://missing-a-port")

    def test_gzip_over_pipe_truncation_detected(self):
        # seekability must come from the raw transport: GzipFile fakes
        # forward seeks, which would silently disable the truncation
        # guard on compressed pipes.
        payload = gzip.compress(
            jsonl(create(1.0)).encode() + json.dumps(create(2.0)).encode()
        )
        read_fd, write_fd = os.pipe()

        def produce():
            with os.fdopen(write_fd, "wb") as sink:
                sink.write(payload)

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            stream = LiveStream(os.fdopen(read_fd, "rb"), compression="gzip")
            with pytest.raises(ValueError, match="truncated"):
                list(stream.events())
        finally:
            producer.join()

    def test_caller_supplied_handle_not_closed(self, tmp_path):
        # The stream only closes transports it opened itself.
        handle = open(write(tmp_path, jsonl(create(1.0))), "r")
        try:
            with LiveStream(handle) as stream:
                assert len(list(stream.events())) == 1
            assert not handle.closed
        finally:
            handle.close()

    def test_owned_path_handle_closed(self, tmp_path):
        stream = LiveStream(write(tmp_path, jsonl(create(1.0))))
        list(stream.events())
        stream.close()
        assert stream._handle.closed


class TestRunnerIntegration:
    def config(self, label="live"):
        return SystemConfig(
            label=label,
            placement="octopus",
            downgrade="lru",
            upgrade="osa",
            workers=4,
        )

    @staticmethod
    def fingerprint(result):
        metrics = result.metrics
        return (
            result.jobs_finished,
            result.jobs_submitted,
            result.deletions_applied,
            metrics.hit_ratio(),
            metrics.byte_hit_ratio(),
            metrics.total_task_seconds(),
            result.elapsed,
            result.transfers_committed,
        )

    def test_live_run_matches_offline_run(self, tmp_path):
        path = str(tmp_path / "fb.jsonl")
        save_events(build_scenario("fb", seed=11, scale=0.05), path)
        offline = WorkloadRunner(ExternalTraceStream(path), self.config()).run()
        live = WorkloadRunner(LiveStream(path), self.config()).run()
        assert self.fingerprint(live) == self.fingerprint(offline)

    def test_live_run_through_real_pipe(self, tmp_path):
        # The canonical demo, in-process: generator thread feeding a
        # pipe while the runner consumes it.
        stream = build_scenario("oscillating", seed=3, scale=0.1)
        path = str(tmp_path / "osc.jsonl")
        save_events(stream, path)
        offline = WorkloadRunner(ExternalTraceStream(path), self.config()).run()

        read_fd, write_fd = os.pipe()

        # Write the serialized events through the pipe, line by line.
        def produce():
            source = build_scenario("oscillating", seed=3, scale=0.1)
            with os.fdopen(write_fd, "w") as sink:
                sink.write(
                    json.dumps(
                        {
                            "kind": "header",
                            "format_version": 1,
                            "name": source.name,
                            "duration": source.duration,
                        }
                    )
                    + "\n"
                )
                for event in source.events():
                    sink.write(json.dumps(event_to_dict(event)) + "\n")
                sink.write(json.dumps({"kind": "end"}) + "\n")

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            live = WorkloadRunner(
                LiveStream(os.fdopen(read_fd, "r")), self.config()
            ).run()
        finally:
            producer.join()
        assert self.fingerprint(live) == self.fingerprint(offline)
        assert live.live_stats is not None
        assert live.live_stats["events_received"] > 0

    def test_headerless_live_run_ends_at_exhaustion(self, tmp_path):
        # No header → unknown duration → the submission window ends
        # when the stream is exhausted instead of at a nominal end.
        source = build_scenario("fb", seed=11, scale=0.05)
        path = str(tmp_path / "fb_headerless.jsonl")
        with open(path, "w") as sink:
            for event in source.events():
                sink.write(json.dumps(event_to_dict(event)) + "\n")
        runner = WorkloadRunner(LiveStream(path), self.config())
        result = runner.run()
        assert result.jobs_finished == result.jobs_submitted > 0
        assert runner.duration < float("inf")

    def test_empty_live_run(self, tmp_path):
        result = WorkloadRunner(
            LiveStream(write(tmp_path, jsonl())), self.config()
        ).run()
        assert result.jobs_submitted == 0
        assert result.jobs_finished == 0
        # Only the fixed post-run transfer-drain window elapses.
        assert result.elapsed <= 600.0

    def test_pump_counters_populated(self, tmp_path):
        path = str(tmp_path / "fb.jsonl")
        save_events(build_scenario("fb", seed=11, scale=0.05), path)
        result = WorkloadRunner(LiveStream(path), self.config()).run()
        assert result.pump_events > 0
        assert result.pump_lead_max_seconds >= result.pump_lead_mean_seconds >= 0.0


class TestLiveEqualsOfflineProperty:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        scale=st.sampled_from([0.05, 0.1]),
        name=st.sampled_from(["fb", "oscillating", "pipeline"]),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_live_replay_equals_offline_replay(self, tmp_path, seed, scale, name):
        """Live replay of a serialized scenario is event-for-event equal
        to offline (file) replay of the same serialization."""
        path = str(tmp_path / f"{name}-{seed}-{scale}.jsonl")
        save_events(build_scenario(name, seed=seed, scale=scale), path)
        offline = [repr(e) for e in ExternalTraceStream(path).events()]
        live = LiveStream(path)
        assert [repr(e) for e in live.events()] == offline
        assert live.live_stats.events_emitted == len(offline)
        assert live.live_stats.events_late == 0
