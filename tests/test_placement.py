"""Tests for block placement policies."""


from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import MB
from repro.dfs import (
    HdfsCachePlacementPolicy,
    HdfsPlacementPolicy,
    Master,
    NodeManager,
    OctopusPlacementPolicy,
)
from repro.dfs.placement import SingleTierPlacementPolicy
from repro.sim import Simulator


def build(policy_cls, workers=4, **kwargs):
    topo = build_local_cluster(num_workers=workers)
    nm = NodeManager(topo)
    policy = policy_cls(topo, nm, Configuration(), **kwargs)
    return topo, policy


class TestHdfsPlacement:
    def test_all_replicas_on_hdd_distinct_nodes(self):
        _, policy = build(HdfsPlacementPolicy)
        targets = policy.place_block(128 * MB, 3)
        assert len(targets) == 3
        assert all(t.tier is StorageTier.HDD for t in targets)
        assert len({t.node_id for t in targets}) == 3

    def test_writer_gets_first_replica(self):
        topo, policy = build(HdfsPlacementPolicy)
        writer = topo.nodes[2].node_id
        targets = policy.place_block(128 * MB, 3, writer_node=writer)
        assert targets[0].node_id == writer

    def test_rack_diversity(self):
        # Multi-rack topology (the default groups small clusters into a
        # single rack, matching the paper's testbed).
        topo = build_local_cluster(num_workers=8, rack_size=4)
        policy = HdfsPlacementPolicy(topo, NodeManager(topo), Configuration())
        targets = policy.place_block(128 * MB, 3)
        racks = [topo.node(t.node_id).rack for t in targets]
        assert len(set(racks)) >= 2

    def test_degrades_when_fewer_nodes(self):
        _, policy = build(HdfsPlacementPolicy, workers=2)
        targets = policy.place_block(128 * MB, 3)
        assert len(targets) == 2  # only two distinct nodes available


class TestHdfsCachePlacement:
    def test_extra_memory_replica_colocated(self):
        topo, policy = build(HdfsCachePlacementPolicy)
        targets = policy.place_block(128 * MB, 3)
        assert len(targets) == 4
        mem = [t for t in targets if t.tier is StorageTier.MEMORY]
        assert len(mem) == 1
        hdd_nodes = {t.node_id for t in targets if t.tier is StorageTier.HDD}
        assert mem[0].node_id in hdd_nodes

    def test_no_cache_when_memory_full(self):
        topo, policy = build(HdfsCachePlacementPolicy)
        # Fill every node's memory.
        for node in topo.nodes:
            for device in node.devices(StorageTier.MEMORY):
                device.allocate(999 + hash(device.device_id) % 1000, device.capacity)
        targets = policy.place_block(128 * MB, 3)
        assert all(t.tier is StorageTier.HDD for t in targets)


class TestOctopusPlacement:
    def test_tier_diversity_while_space(self):
        _, policy = build(OctopusPlacementPolicy)
        targets = policy.place_block(128 * MB, 3)
        assert {t.tier for t in targets} == {
            StorageTier.MEMORY,
            StorageTier.SSD,
            StorageTier.HDD,
        }
        assert len({t.node_id for t in targets}) == 3

    def test_falls_back_when_memory_full(self):
        topo, policy = build(OctopusPlacementPolicy)
        for node in topo.nodes:
            for device in node.devices(StorageTier.MEMORY):
                device.allocate(12345 + hash(device.device_id) % 1000, device.capacity)
        targets = policy.place_block(128 * MB, 3)
        tiers = sorted(t.tier for t in targets)
        assert StorageTier.MEMORY not in tiers
        assert set(tiers) == {StorageTier.SSD, StorageTier.HDD}

    def test_select_transfer_target_excludes_replica_nodes(self, tmp_path):
        topo = build_local_cluster(num_workers=4)
        nm = NodeManager(topo)
        policy = OctopusPlacementPolicy(topo, nm, Configuration())
        master = Master(topo, policy, Simulator())
        file = master.create_file("/f", 128 * MB)
        block = master.blocks.blocks_of(file)[0]
        mem_replica = block.replicas_on_tier(StorageTier.MEMORY)[0]
        target = policy.select_transfer_target(
            block, mem_replica, [StorageTier.SSD, StorageTier.HDD]
        )
        assert target is not None
        other_nodes = {
            r.node_id
            for r in block.replicas.values()
            if r.replica_id != mem_replica.replica_id
        }
        assert target.node_id not in other_nodes

    def test_select_transfer_target_prefers_source_node(self):
        topo = build_local_cluster(num_workers=4)
        nm = NodeManager(topo)
        policy = OctopusPlacementPolicy(topo, nm, Configuration())
        master = Master(topo, policy, Simulator())
        file = master.create_file("/f", 128 * MB)
        block = master.blocks.blocks_of(file)[0]
        mem_replica = block.replicas_on_tier(StorageTier.MEMORY)[0]
        target = policy.select_transfer_target(block, mem_replica, [StorageTier.SSD])
        # The source node has SSD space, no other replica on it: local move.
        assert target is not None
        assert target.node_id == mem_replica.node_id

    def test_select_copy_target_excludes_all_replica_nodes(self):
        topo = build_local_cluster(num_workers=4)
        nm = NodeManager(topo)
        policy = OctopusPlacementPolicy(topo, nm, Configuration())
        master = Master(topo, policy, Simulator())
        file = master.create_file("/f", 128 * MB)
        block = master.blocks.blocks_of(file)[0]
        target = policy.select_copy_target(block, list(StorageTier))
        assert target is not None
        assert target.node_id not in block.nodes()

    def test_returns_none_when_no_space(self):
        topo = build_local_cluster(num_workers=1)
        nm = NodeManager(topo)
        policy = OctopusPlacementPolicy(topo, nm, Configuration())
        master = Master(topo, policy, Simulator())
        file = master.create_file("/f", 128 * MB, replication=1)
        block = master.blocks.blocks_of(file)[0]
        replica = block.replica_list()[0]
        # Only one node: a move target excluding... the node itself is
        # allowed (source vacates), but a copy target is impossible.
        assert policy.select_copy_target(block, list(StorageTier)) is None
        assert replica is not None


class TestSingleTierPlacement:
    def test_pins_to_hdd(self):
        _, policy = build(SingleTierPlacementPolicy)
        targets = policy.place_block(128 * MB, 3)
        assert len(targets) == 3
        assert all(t.tier is StorageTier.HDD for t in targets)

    def test_custom_tier(self):
        _, policy = build(SingleTierPlacementPolicy, tier=StorageTier.SSD)
        targets = policy.place_block(128 * MB, 2)
        assert all(t.tier is StorageTier.SSD for t in targets)
