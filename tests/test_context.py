"""Tests for the PolicyContext candidate queries."""


from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core.context import PolicyContext
from repro.core.stats import StatisticsRegistry
from repro.dfs import DFSClient, Master, NodeManager, OctopusPlacementPolicy
from repro.dfs.placement import SingleTierPlacementPolicy
from repro.sim import Simulator


def build_ctx(placement_cls=OctopusPlacementPolicy, in_flight=None):
    sim = Simulator()
    topo = build_local_cluster(num_workers=3, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    master = Master(topo, placement_cls(topo, nm, Configuration()), sim)
    stats = StatisticsRegistry()
    ctx = PolicyContext(master, stats, sim, in_flight=in_flight)
    return ctx, DFSClient(master), master


class TestCandidateQueries:
    def test_files_on_tier(self):
        ctx, client, _ = build_ctx()
        client.create("/a", 64 * MB)
        names = [f.path for f in ctx.files_on_tier(StorageTier.MEMORY)]
        assert names == ["/a"]

    def test_in_flight_exclusion(self):
        busy = set()
        ctx, client, master = build_ctx(in_flight=lambda: busy)
        file = client.create("/a", 64 * MB)
        busy.add(file.inode_id)
        assert ctx.files_on_tier(StorageTier.MEMORY) == []

    def test_files_below_tier(self):
        ctx, client, _ = build_ctx(placement_cls=SingleTierPlacementPolicy)
        client.create("/hdd-only", 64 * MB)
        below = [f.path for f in ctx.files_below_tier(StorageTier.MEMORY)]
        assert below == ["/hdd-only"]
        assert ctx.files_below_tier(StorageTier.HDD) == []

    def test_file_best_tier_helpers(self):
        ctx, client, master = build_ctx()
        file = client.create("/a", 64 * MB)
        assert ctx.file_best_tier(file) is StorageTier.MEMORY
        assert ctx.file_in_tier_or_better(file, StorageTier.SSD)

    def test_tier_state_passthrough(self):
        ctx, client, master = build_ctx()
        client.create("/a", 512 * MB)
        assert 0 < ctx.tier_utilization(StorageTier.MEMORY) < 1
        assert ctx.tier_free(StorageTier.MEMORY) < master.tier_capacity(
            StorageTier.MEMORY
        )

    def test_now_tracks_clock(self):
        ctx, _, master = build_ctx()
        assert ctx.now() == 0.0
