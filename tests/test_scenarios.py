"""Tests for the named-scenario library and registry."""

import pytest

from repro.engine.runner import SystemConfig, run_scenario
from repro.workload.jobs import (
    FileCreation,
    FileDeletion,
    TraceJob,
    event_sort_key,
    event_time,
)
from repro.workload.profiles import FB_PROFILE, scaled_profile
from repro.workload.scenarios import (
    SCENARIOS,
    build_scenario,
    get_scenario,
    scenario_names,
)
from repro.workload.synthesis import synthesize_trace

REQUIRED = {"fb", "cmu", "diurnal", "flashcrowd", "mlscan", "oscillating", "pipeline"}

#: Small builds for per-scenario checks (classic traces scale by jobs,
#: generators by duration).
SMALL = {name: (0.05 if name in ("fb", "cmu") else 0.12) for name in REQUIRED}


class TestRegistry:
    def test_at_least_six_scenarios(self):
        assert len(scenario_names()) >= 6
        assert REQUIRED <= set(scenario_names())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            build_scenario("diurnal", tenants=2, bogus=1)

    def test_descriptions_and_defaults_present(self):
        for name in scenario_names():
            scenario = SCENARIOS[name]
            assert scenario.description
            assert isinstance(scenario.defaults, dict)

    def test_param_override_changes_stream(self):
        base = build_scenario("oscillating", seed=1, scale=0.1)
        wide = build_scenario("oscillating", seed=1, scale=0.1, pool_files=999)
        assert [repr(e) for e in base] != [repr(e) for e in wide]


class TestStreamWellFormed:
    @pytest.mark.parametrize("name", sorted(REQUIRED))
    def test_time_ordered_and_nonempty(self, name):
        stream = build_scenario(name, seed=13, scale=SMALL[name])
        events = list(stream.events())
        assert events
        keys = [event_sort_key(e) for e in events]
        assert keys == sorted(keys)
        assert all(event_time(e) <= stream.duration for e in events)

    @pytest.mark.parametrize("name", sorted(REQUIRED))
    def test_jobs_numbered_sequentially(self, name):
        stream = build_scenario(name, seed=13, scale=SMALL[name])
        ids = [e.job_id for e in stream if isinstance(e, TraceJob)]
        assert ids == list(range(len(ids)))

    @pytest.mark.parametrize("name", sorted(REQUIRED))
    def test_reads_follow_creations(self, name):
        """Every input path exists (created or written) by submit time."""
        stream = build_scenario(name, seed=13, scale=SMALL[name])
        live = set()
        for event in stream:
            if isinstance(event, FileCreation):
                live.add(event.path)
            elif isinstance(event, FileDeletion):
                assert event.path in live
                live.discard(event.path)
            else:
                for path in event.input_paths:
                    assert path in live or path.startswith("/out/")
                for output in event.outputs:
                    live.add(output.path)

    def test_pipeline_short_ttl_stays_ordered(self):
        """ttl below hot+cool must not emit deletions out of order."""
        stream = build_scenario("pipeline", seed=7, scale=0.5, ttl_minutes=90)
        keys = [event_sort_key(e) for e in stream.events()]
        assert keys == sorted(keys)
        deletions = [e for e in stream.events() if isinstance(e, FileDeletion)]
        assert deletions, "short-ttl pipeline still retires datasets"

    def test_pipeline_never_reads_deleted_files(self):
        stream = build_scenario("pipeline", seed=13)
        deleted_at = {}
        for event in stream:
            if isinstance(event, FileDeletion):
                deleted_at[event.path] = event.time
            elif isinstance(event, TraceJob):
                for path in event.input_paths:
                    assert path not in deleted_at

    def test_scale_extends_generated_streams(self):
        short = build_scenario("flashcrowd", seed=3, scale=0.1)
        long = build_scenario("flashcrowd", seed=3, scale=0.4)
        assert long.duration == pytest.approx(4 * short.duration)
        assert long.stats().events > 2 * short.stats().events


class TestClassicCompat:
    def test_fb_scenario_matches_synthesizer(self):
        stream = build_scenario("fb", seed=4, scale=0.05)
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=4)
        assert list(stream.events()) == list(trace.events())

    def test_drift_param_forwarded(self):
        drifting = build_scenario("fb", seed=4, scale=0.05)
        stationary = build_scenario("fb", seed=4, scale=0.05, drift=0)
        assert [repr(e) for e in drifting] != [repr(e) for e in stationary]


class TestEndToEnd:
    @pytest.mark.parametrize("name", sorted(REQUIRED))
    def test_runs_through_the_system(self, name):
        result = run_scenario(
            name,
            config=SystemConfig(
                label=name,
                placement="octopus",
                downgrade="lru",
                upgrade="osa",
                workers=4,
            ),
            seed=13,
            scale=SMALL[name],
        )
        assert result.jobs_finished == result.jobs_submitted > 0
        assert 0.0 <= result.metrics.hit_ratio() <= 1.0
