"""Tests for service mode: the multi-tenant daemon, mux, and pacing."""

import io
import json
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.engine.runner import SystemConfig, WorkloadRunner
from repro.service import (
    ServiceClosed,
    ServiceEngine,
    TenantMux,
    TenantRegistry,
    TieringService,
    json_safe,
    result_to_dict,
)
from repro.workload.jobs import FileCreation, FileDeletion, TraceJob, event_time
from repro.workload.live import LiveStream, paced_events, parse_endpoint
from repro.workload.scenarios import build_scenario
from repro.workload.serialize import event_to_dict


def jsonl(*records, header=True, end=True, name=None, duration=None):
    lines = []
    if header:
        head = {"kind": "header", "format_version": 1}
        if name is not None:
            head["name"] = name
        if duration is not None:
            head["duration"] = duration
        lines.append(json.dumps(head))
    lines.extend(json.dumps(r) for r in records)
    if end:
        lines.append(json.dumps({"kind": "end"}))
    return "\n".join(lines) + "\n"


def create(t, path="/data/a", size=1024):
    return {"kind": "create", "time": t, "path": path, "bytes": size}


def job(t, paths=("/data/a",)):
    return {"kind": "job", "time": t, "inputs": list(paths)}


def scenario_jsonl(name="fb", scale=0.03, seed=11, duration=None):
    """A serialized scenario as JSONL text (headerless duration unless set)."""
    stream = build_scenario(name, scale=scale, seed=seed)
    head = {"kind": "header", "format_version": 1, "name": f"{name}-{seed}"}
    if duration is not None:
        head["duration"] = duration
    lines = [json.dumps(head)]
    lines += [json.dumps(event_to_dict(ev)) for ev in stream.events()]
    lines.append(json.dumps({"kind": "end"}))
    return "\n".join(lines) + "\n"


def event_signature(event):
    """Comparable view of a stream event (ignores service tags)."""
    if isinstance(event, FileCreation):
        return ("create", event.time, event.path, event.size)
    if isinstance(event, FileDeletion):
        return ("delete", event.time, event.path)
    return (
        "job",
        event.submit_time,
        event.job_id,
        tuple(event.input_paths),
        event.input_size,
        tuple((o.path, o.size) for o in event.outputs),
    )


def capture_applied(runner):
    """Record every event the runner applies, in order."""
    applied = []
    original = runner._apply_event

    def recording(event):
        applied.append(event_signature(event))
        original(event)

    runner._apply_event = recording
    return applied


# -- pacing -------------------------------------------------------------------
class TestPacing:
    def test_paced_events_sleeps_to_deadlines(self):
        clock_now = [100.0]
        sleeps = []

        def clock():
            return clock_now[0]

        def sleep(seconds):
            sleeps.append(seconds)
            clock_now[0] += seconds

        events = [
            FileCreation(path="/a", size=1, time=0.0),
            FileCreation(path="/b", size=1, time=10.0),
            FileCreation(path="/c", size=1, time=30.0),
        ]
        out = list(paced_events(iter(events), pace=10.0, clock=clock, sleep=sleep))
        assert [e.path for e in out] == ["/a", "/b", "/c"]
        # t0=100; deadlines at 100+1 and 100+3 wall seconds.
        assert sleeps == [1.0, 2.0]

    def test_paced_events_never_sleeps_when_behind(self):
        sleeps = []
        events = [FileCreation(path="/a", size=1, time=0.0)] * 3
        list(
            paced_events(
                iter(events), pace=1.0, clock=lambda: 1e9, sleep=sleeps.append
            )
        )
        assert sleeps == []

    def test_paced_events_rejects_bad_pace(self):
        with pytest.raises(ValueError):
            list(paced_events(iter([]), pace=0.0))

    def test_live_stream_pace_validation(self):
        with pytest.raises(ValueError):
            LiveStream(io.StringIO(jsonl()), pace=-1.0)

    def test_live_pace_wall_clock_bounds(self):
        # Three events over 2 simulated seconds at pace 20 should take
        # roughly 0.1 wall seconds — and certainly between the ideal
        # time and a generous ceiling.
        text = jsonl(create(0.0), job(1.0), job(2.0))
        stream = LiveStream(io.StringIO(text), pace=20.0)
        start = time.monotonic()
        events = list(stream.events())
        wall = time.monotonic() - start
        assert len(events) == 3
        assert wall >= 2.0 / 20.0 * 0.5  # at least half the ideal pacing
        assert wall < 5.0  # and nowhere near unpaced-blocking territory


class TestEndpoints:
    def test_parse_endpoint_forms(self):
        assert parse_endpoint("listen://9000", "listen") == ("", 9000)
        assert parse_endpoint("listen://0.0.0.0:9000", "listen") == (
            "0.0.0.0",
            9000,
        )
        assert parse_endpoint("tcp://[::1]:9000", "tcp") == ("::1", 9000)
        with pytest.raises(ValueError):
            parse_endpoint("listen://nope", "listen")
        with pytest.raises(ValueError):
            parse_endpoint("tcp://host:port", "listen")

    def test_listen_source_accepts_one_producer(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()  # free the port; the stream rebinds it
        text = jsonl(create(1.0), job(2.0))
        result = {}

        def consume():
            stream = LiveStream(f"listen://127.0.0.1:{port}")
            result["events"] = list(stream.events())
            stream.close()

        consumer = threading.Thread(target=consume)
        consumer.start()
        deadline = time.time() + 5.0
        while time.time() < deadline:
            try:
                conn = socket.create_connection(("127.0.0.1", port), timeout=0.2)
                break
            except OSError:
                time.sleep(0.05)
        with conn:
            conn.sendall(text.encode())
        consumer.join(timeout=10.0)
        assert [event_time(e) for e in result["events"]] == [1.0, 2.0]


# -- the mux ------------------------------------------------------------------
class TestTenantMux:
    def make(self, clock=lambda: 0.0):
        registry = TenantRegistry()
        mux = TenantMux(registry, clock=clock)
        return registry, mux

    def test_single_tenant_passthrough(self):
        registry, mux = self.make()
        tenant = registry.create("a", "inline", isolate=False)
        session = mux.attach(tenant)
        events = [
            FileCreation(path="/a", size=1, time=1.0),
            TraceJob(job_id=0, submit_time=2.0, input_paths=["/a"], input_size=1),
        ]
        for ev in events:
            mux.feed(session, ev)
        mux.end(session)
        mux.close_admissions()
        out = list(mux.events())
        assert [event_signature(e) for e in out] == [
            event_signature(e) for e in events
        ]
        assert tenant.events_emitted == 2
        assert tenant.jobs_submitted == 1

    def test_interleaves_two_tenants_in_time_order(self):
        registry, mux = self.make()
        ta = registry.create("a", "inline", isolate=False)
        tb = registry.create("b", "inline", isolate=False)
        sa, sb = mux.attach(ta), mux.attach(tb)
        mux.feed(sa, FileCreation(path="/a", size=1, time=1.0))
        mux.feed(sa, FileCreation(path="/a2", size=1, time=5.0))
        mux.feed(sb, FileCreation(path="/b", size=1, time=2.0))
        mux.feed(sb, FileCreation(path="/b2", size=1, time=6.0))
        mux.end(sa)
        mux.end(sb)
        mux.close_admissions()
        assert [e.path for e in mux.events()] == ["/a", "/b", "/a2", "/b2"]

    def test_offset_shifts_later_tenant(self):
        now = [0.0]
        registry, mux = self.make(clock=lambda: now[0])
        ta = registry.create("a", "inline", isolate=False)
        sa = mux.attach(ta)
        now[0] = 100.0
        tb = registry.create("b", "inline", isolate=False)
        sb = mux.attach(tb)
        assert tb.offset == 100.0
        mux.feed(sa, FileCreation(path="/a", size=1, time=0.0))
        mux.feed(sb, FileCreation(path="/b", size=1, time=0.0))
        mux.end(sa)
        mux.end(sb)
        mux.close_admissions()
        out = list(mux.events())
        assert [(e.path, e.time) for e in out] == [("/a", 0.0), ("/b", 100.0)]

    def test_waits_for_open_empty_session(self):
        # An open tenant that has sent nothing blocks emission of later
        # events until it sends or closes (the deterministic-merge price).
        registry, mux = self.make()
        ta = registry.create("a", "inline", isolate=False)
        tb = registry.create("b", "inline", isolate=False)
        sa, sb = mux.attach(ta), mux.attach(tb)
        mux.feed(sa, FileCreation(path="/a", size=1, time=5.0))
        mux.end(sa)
        mux.close_admissions()
        got = []

        def consume():
            got.extend(mux.events())

        consumer = threading.Thread(target=consume)
        consumer.start()
        time.sleep(0.2)
        assert got == []  # blocked on tenant b
        mux.feed(sb, FileCreation(path="/b", size=1, time=1.0))
        mux.end(sb)
        consumer.join(timeout=5.0)
        assert [e.path for e in got] == ["/b", "/a"]

    def test_prefix_isolates_paths(self):
        registry, mux = self.make()
        tenant = registry.create("a", "inline")  # isolate defaults on
        session = mux.attach(tenant)
        assert tenant.prefix == f"/{tenant.tenant_id}"
        mux.feed(session, FileCreation(path="/data/x", size=1, time=0.0))
        mux.feed(
            session,
            TraceJob(
                job_id=0, submit_time=1.0, input_paths=["/data/x"], input_size=1
            ),
        )
        mux.feed(session, FileDeletion(path="/data/x", time=2.0))
        mux.end(session)
        mux.close_admissions()
        out = list(mux.events())
        prefix = tenant.prefix
        assert out[0].path == f"{prefix}/data/x"
        assert out[1].input_paths == [f"{prefix}/data/x"]
        assert out[2].path == f"{prefix}/data/x"

    def test_attach_after_close_raises(self):
        registry, mux = self.make()
        mux.close_admissions()
        with pytest.raises(ServiceClosed):
            mux.attach(registry.create("late", "inline"))

    def test_force_close_replays_buffered_events(self):
        registry, mux = self.make()
        tenant = registry.create("a", "inline", isolate=False)
        session = mux.attach(tenant)
        mux.feed(session, FileCreation(path="/a", size=1, time=1.0))
        mux.force_close()  # session never ended cleanly
        assert tenant.state == "closed"
        assert [e.path for e in mux.events()] == ["/a"]

    def test_failed_tenant_does_not_stop_merge(self):
        registry, mux = self.make()
        ta = registry.create("a", "inline", isolate=False)
        tb = registry.create("b", "inline", isolate=False)
        sa, sb = mux.attach(ta), mux.attach(tb)
        mux.feed(sb, FileCreation(path="/b", size=1, time=1.0))
        mux.fail(sa, ValueError("corrupt stream"))
        mux.end(sb)
        mux.close_admissions()
        assert [e.path for e in mux.events()] == ["/b"]
        assert ta.state == "failed"
        assert "corrupt" in ta.error

    def test_single_shot(self):
        _, mux = self.make()
        mux.close_admissions()
        list(mux.events())
        with pytest.raises(ValueError):
            mux.events()


# -- JSON safety (the duration=inf bugfix) ------------------------------------
class TestJsonSafety:
    def test_json_safe_scrubs_nonfinite(self):
        value = {
            "inf": float("inf"),
            "nan": float("nan"),
            "ok": 1.5,
            "nested": [float("-inf"), {"deep": float("inf")}],
        }
        safe = json_safe(value)
        assert safe["inf"] is None
        assert safe["nan"] is None
        assert safe["ok"] == 1.5
        assert safe["nested"] == [None, {"deep": None}]
        json.loads(json.dumps(safe))  # strictly valid JSON

    def test_json_safe_stringifies_tier_keys(self):
        class Tier:
            name = "MEMORY"

        assert json_safe({Tier(): 1.0}) == {"MEMORY": 1.0}

    def test_headerless_run_result_duration_is_none_mid_flight(self):
        text = jsonl(create(1.0), job(2.0), header=False)
        runner = WorkloadRunner(
            LiveStream(io.StringIO(text)), SystemConfig(label="x")
        )
        # Before the stream is exhausted, duration is open-ended.
        snap = runner.snapshot()
        assert snap.duration is None
        result = runner.run()
        assert result.duration is not None
        payload = json.dumps(result_to_dict(result))
        assert "Infinity" not in payload

    def test_result_to_dict_is_json_clean(self):
        result = WorkloadRunner(
            LiveStream(io.StringIO(jsonl(create(1.0), job(2.0)))),
            SystemConfig(label="x"),
        ).run()
        payload = json.dumps(result_to_dict(result))
        assert "Infinity" not in payload and "NaN" not in payload


# -- the engine and daemon ----------------------------------------------------
def drain_and_wait(service, timeout=120.0):
    service.begin_drain(mode="drain")
    result = service.wait(timeout=timeout)
    assert result is not None, "engine did not finish in time"
    return result


class TestServiceEngine:
    def test_two_identical_tenants_isolated(self):
        text = scenario_jsonl(scale=0.02, seed=7)
        engine = ServiceEngine(SystemConfig(label="iso"))
        engine.start()
        t1 = engine.attach_jsonl(text)
        t2 = engine.attach_jsonl(text)
        deadline = time.time() + 60.0
        while time.time() < deadline:
            if all(t.state == "finished" for t in engine.registry.list()):
                break
            time.sleep(0.05)
        engine.begin_drain(grace=5.0)
        result = engine.join(timeout=120.0)
        assert result is not None
        # Same stream, isolated namespaces: both tenants finish every job,
        # and the shared run is the sum.
        assert t1.collector.jobs_completed == t2.collector.jobs_completed > 0
        assert (
            result.metrics.jobs_completed
            == t1.collector.jobs_completed + t2.collector.jobs_completed
        )
        assert t1.collector.bytes_read == t2.collector.bytes_read > 0
        assert (
            result.metrics.bytes_read
            == t1.collector.bytes_read + t2.collector.bytes_read
        )

    def test_single_tenant_matches_offline_replay(self):
        # The acceptance property: a single-tenant served run (isolation
        # off) is event-for-event identical to the offline `repro live`
        # replay of the same stream, and its per-tenant projection equals
        # the offline metrics.
        text = scenario_jsonl(scale=0.03, seed=11)
        offline_runner = WorkloadRunner(
            LiveStream(io.StringIO(text)), SystemConfig(label="x")
        )
        offline_applied = capture_applied(offline_runner)
        offline = offline_runner.run()

        engine = ServiceEngine(SystemConfig(label="x"))
        served_applied = capture_applied(engine.runner)
        engine.start()
        tenant = engine.attach_jsonl(text, isolate=False)
        deadline = time.time() + 60.0
        while tenant.state != "finished" and time.time() < deadline:
            time.sleep(0.05)
        engine.begin_drain(grace=5.0)
        served = engine.join(timeout=120.0)

        assert served_applied == offline_applied  # event-for-event
        for attr in (
            "task_reads",
            "task_reads_memory",
            "bytes_read",
            "bytes_read_memory",
            "file_accesses",
            "file_accesses_memory_located",
            "bytes_written",
            "jobs_completed",
        ):
            assert getattr(tenant.collector, attr) == getattr(
                offline.metrics, attr
            ), attr
        assert (
            tenant.collector.mean_completion_times()
            == offline.metrics.mean_completion_times()
        )
        assert served.duration == offline.duration
        assert served.jobs_finished == offline.jobs_finished

    def test_results_log_survives_restart(self, tmp_path):
        log_path = str(tmp_path / "results.jsonl")
        text = scenario_jsonl(scale=0.02, seed=7)
        engine = ServiceEngine(SystemConfig(label="rlog"), results_log=log_path)
        assert engine.past_tenants == []
        engine.start()
        tenant = engine.attach_jsonl(text)
        deadline = time.time() + 60.0
        while tenant.state != "finished" and time.time() < deadline:
            time.sleep(0.05)
        engine.begin_drain(grace=5.0)
        engine.join(timeout=120.0)

        # The final (post-drain) record carries complete metrics and
        # collapses with the stream-end record on load.
        restarted = ServiceEngine(
            SystemConfig(label="rlog2"), results_log=log_path
        )
        assert len(restarted.past_tenants) == 1
        record = restarted.past_tenants[0]
        assert record["final"] is True
        assert record["tenant"]["id"] == tenant.tenant_id
        assert record["tenant"]["jobs_finished"] == (
            tenant.collector.jobs_completed
        )
        assert record["metrics"]["bytes_read"] == tenant.collector.bytes_read

    def test_drain_completes_in_flight_jobs(self):
        # A session force-closed by drain must not strand its jobs: the
        # engine finishes everything already admitted.
        engine = ServiceEngine(SystemConfig(label="drain"))
        engine.start()
        text = jsonl(
            create(0.0, "/d/a", 64 << 20),
            job(1.0, ["/d/a"]),
            job(2.0, ["/d/a"]),
            end=False,  # producer never closes: drain must force it
        )
        stream = LiveStream(io.StringIO(text))
        tenant = engine.attach_events(
            stream.events(), name="inflight", source="inline"
        )
        deadline = time.time() + 30.0
        while tenant.jobs_submitted < 2 and time.time() < deadline:
            time.sleep(0.05)
        engine.begin_drain(grace=0.2)
        result = engine.join(timeout=120.0)
        assert result.jobs_submitted == 2
        assert result.jobs_finished == 2
        assert tenant.collector.jobs_completed == 2


class TestDaemon:
    @pytest.fixture()
    def service(self):
        service = TieringService(
            SystemConfig(label="daemon"), drain_grace=5.0
        )
        service.start()
        yield service
        service.stop()

    def control(self, service, path, payload=None, method=None):
        url = f"http://127.0.0.1:{service.control_port}{path}"
        if payload is not None:
            request = urllib.request.Request(
                url,
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
                method=method or "POST",
            )
        else:
            request = urllib.request.Request(url, method=method or "GET")
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def test_concurrent_socket_tenants(self, service):
        texts = {
            seed: scenario_jsonl(scale=0.02, seed=seed).encode()
            for seed in (21, 22)
        }

        def produce(seed):
            with socket.create_connection(
                ("127.0.0.1", service.data_port)
            ) as conn:
                conn.sendall(texts[seed])

        producers = [
            threading.Thread(target=produce, args=(seed,)) for seed in texts
        ]
        for producer in producers:
            producer.start()
        for producer in producers:
            producer.join(timeout=30.0)
        # sendall returns before the daemon has necessarily accepted;
        # wait for both sessions to stream to completion.
        deadline = time.time() + 30.0
        while time.time() < deadline:
            tenants = service.engine.registry.list()
            if len(tenants) == 2 and all(
                t.state == "finished" for t in tenants
            ):
                break
            time.sleep(0.05)
        result = drain_and_wait(service)
        tenants = service.engine.registry.list()
        assert len(tenants) == 2
        assert all(t.state == "finished" for t in tenants)
        assert all(t.collector.jobs_completed > 0 for t in tenants)
        assert result.jobs_finished == sum(
            t.collector.jobs_completed for t in tenants
        )
        # Per-tenant projections are served over the control plane.
        for tenant in tenants:
            status, body = self.control(
                service, f"/tenants/{tenant.tenant_id}/metrics"
            )
            assert status == 200
            assert body["jobs_finished"] == tenant.collector.jobs_completed

    def test_healthz_and_metrics_endpoints(self, service):
        status, health = self.control(service, "/healthz")
        assert status == 200
        assert health["status"] == "serving"
        assert health["data_port"] == service.data_port
        status, metrics = self.control(service, "/metrics")
        assert status == 200
        assert metrics["run"]["duration"] is None  # open-ended, never inf
        assert {"events_processed", "pending_events", "heap_peak"} <= set(
            metrics["engine"]
        )
        assert "queue_delay_by_tier" in metrics["run"]

    def test_prometheus_endpoint(self, service):
        url = (
            f"http://127.0.0.1:{service.control_port}"
            "/metrics?format=prometheus"
        )
        with urllib.request.urlopen(url) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        assert 'repro_service_up{status="serving"} 1' in text
        assert "repro_engine_events_processed" in text
        assert "repro_engine_pending_events" in text

    def test_post_tenants_inline_and_scenario(self, service):
        status, body = self.control(
            service,
            "/tenants",
            {"events": jsonl(create(0.0), job(1.0)), "name": "inline-1"},
        )
        assert status == 201
        assert body["tenant"]["name"] == "inline-1"
        status, body = self.control(
            service,
            "/tenants",
            {"scenario": "fb", "params": {"scale": 0.02, "seed": 5}},
        )
        assert status == 201
        assert body["tenant"]["source"] == "scenario:fb"
        status, listing = self.control(service, "/tenants")
        assert status == 200
        assert len(listing["tenants"]) == 2

    def test_control_plane_errors(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            self.control(service, "/tenants/t99/metrics")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            self.control(service, "/tenants", {"neither": 1})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            self.control(service, "/shutdown", {"mode": "explode"})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            self.control(service, "/nope")
        assert err.value.code == 404

    def test_shutdown_endpoint_drains(self, service):
        self.control(
            service, "/tenants", {"events": jsonl(create(0.0), job(1.0))}
        )
        status, body = self.control(service, "/shutdown", {"mode": "drain"})
        assert status == 202
        result = service.wait(timeout=120.0)
        assert result is not None
        assert result.jobs_finished == 1
        # Admissions are closed once draining.
        with pytest.raises(urllib.error.HTTPError) as err:
            self.control(
                service, "/tenants", {"events": jsonl(create(0.0), job(1.0))}
            )
        assert err.value.code == 409


class TestServeCommand:
    def test_sigterm_drains_and_reports(self, tmp_path):
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--drain-grace",
                "5",
                "--workers",
                "4",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("serving data=tcp://")
            control_port = int(line.rsplit(":", 1)[1])
            request = urllib.request.Request(
                f"http://127.0.0.1:{control_port}/tenants",
                data=json.dumps(
                    {"scenario": "fb", "params": {"scale": 0.02, "seed": 5}}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 201
            time.sleep(0.5)
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, output
        summary = json.loads(output[output.index("{") :])
        assert summary["jobs_finished"] == summary["jobs_submitted"] > 0
        assert "Infinity" not in output
