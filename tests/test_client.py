"""Tests for the path-oriented DFS client."""

import pytest

from repro.cluster import StorageTier
from repro.common.units import MB


class TestClientApi:
    def test_create_and_open(self, client):
        client.create("/a/b.bin", 64 * MB)
        plan = client.open("/a/b.bin")
        assert plan.total_bytes == 64 * MB

    def test_exists(self, client):
        assert not client.exists("/x")
        client.create("/x", MB)
        assert client.exists("/x")

    def test_file_status(self, client):
        client.create("/dir/f", 200 * MB, replication=2)
        status = client.file_status("/dir/f")
        assert status.size == 200 * MB
        assert status.replication == 2
        assert status.block_count == 2
        assert not status.is_directory

    def test_directory_status(self, client):
        client.mkdirs("/d")
        status = client.file_status("/d")
        assert status.is_directory
        assert status.size == 0

    def test_missing_status_raises(self, client):
        with pytest.raises(FileNotFoundError):
            client.file_status("/missing")

    def test_list_status_sorted(self, client):
        for name in ("c", "a", "b"):
            client.create(f"/d/{name}", MB)
        names = [s.path.rsplit("/", 1)[-1] for s in client.list_status("/d")]
        assert names == ["a", "b", "c"]

    def test_delete(self, client):
        client.create("/f", MB)
        client.delete("/f")
        assert not client.exists("/f")

    def test_rename(self, client):
        client.create("/old", MB)
        client.rename("/old", "/new/name")
        assert client.exists("/new/name")
        assert not client.exists("/old")

    def test_file_tiers(self, client):
        client.create("/f", 128 * MB)
        tiers = client.file_tiers("/f")
        assert tiers == [StorageTier.MEMORY, StorageTier.SSD, StorageTier.HDD]
