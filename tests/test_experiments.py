"""Smoke tests for the experiment runners (reduced scale).

The benchmark harness exercises the full-scale versions; these tests
verify the runners' mechanics and renderers quickly.
"""

import pytest

from repro.common.units import GB
from repro.experiments.common import ExperimentScale, format_table, make_trace
from repro.experiments.fig02_dfsio import render_fig02, run_fig02
from repro.experiments.fig05_cdfs import render_fig05, run_fig05
from repro.experiments.learning_modes import hourly_accuracy
from repro.experiments.model_eval import FIG15_VARIANTS
from repro.experiments.overheads import render_overheads, run_overheads
from repro.experiments.table03_bins import render_table03, run_table03

SMOKE = ExperimentScale(workload_scale=0.08, seed=9)


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        # title + header + separator + 2 data rows
        assert len(lines) == 5
        assert lines[1].startswith("a")

    def test_make_trace_scales(self):
        trace = make_trace("FB", SMOKE)
        assert len(trace.jobs) == 80

    def test_scale_profile_names(self):
        assert SMOKE.profile("FB").name == "FB"
        with pytest.raises(KeyError):
            SMOKE.profile("nope")


class TestTable03:
    def test_rows_cover_all_bins(self):
        result = run_table03(SMOKE)
        assert len(result.rows["FB"]) == 6
        assert len(result.rows["CMU"]) == 6
        total = sum(r.pct_jobs for r in result.rows["FB"])
        assert total == pytest.approx(100.0, abs=0.5)
        assert "Table 3" in render_table03(result)


class TestFig05:
    def test_cdfs_built_for_both_workloads(self):
        result = run_fig05(SMOKE)
        assert set(result.job_sizes) == {"FB", "CMU"}
        values, probs = result.job_sizes["FB"]
        assert len(values) == len(probs) > 0
        assert "Fig 5" in render_fig05(result)


class TestFig02:
    def test_small_dfsio_run(self):
        result = run_fig02(total_bytes=6 * GB, workers=3)
        assert set(result.write_curves) == {
            "Original HDFS",
            "HDFS with Cache",
            "OctopusFS",
            "Octopus++",
        }
        assert "WRITE" in render_fig02(result)


class TestOverheads:
    def test_measurements_positive(self):
        result = run_overheads(SMOKE)
        assert result.train_ms_per_sample > 0
        assert result.predict_us_per_sample > 0
        assert result.model_size_kb > 0
        assert result.n_samples > 0
        assert "overheads" in render_overheads(result)


class TestLearningHelpers:
    def test_hourly_accuracy_buckets(self):
        history = [(600.0, True), (1800.0, False), (7200.0, True)]
        series = hourly_accuracy(history, horizon=3 * 3600.0)
        assert series[0] == pytest.approx(50.0)
        assert series[2] == pytest.approx(100.0)

    def test_empty_bucket_is_nan(self):
        import numpy as np

        series = hourly_accuracy([(100.0, True)], horizon=2 * 3600.0)
        assert np.isnan(series[1])


class TestFig15Variants:
    def test_variant_specs_differ(self):
        default_spec, _ = FIG15_VARIANTS["With 12 Accesses (Def)"]
        no_size, _ = FIG15_VARIANTS["W/out Filesize"]
        assert default_spec.include_size and not no_size.include_size
        assert FIG15_VARIANTS["With 6 Accesses"][0].k == 6


class TestExtendedPolicies:
    def test_small_run_covers_all_policies(self):
        from repro.experiments.extended_policies import (
            render_extended_policies,
            run_extended_policies,
        )

        result = run_extended_policies(
            "FB", scale=SMOKE, policies=("random", "slru-k")
        )
        assert set(result.runs) == {"HDFS", "LRU", "XGB", "RANDOM", "SLRU-K"}
        table = render_extended_policies(result)
        assert "SLRU-K" in table and "RANDOM" in table


class TestFaultToleranceExperiment:
    def test_small_run_repairs_everything(self):
        from repro.experiments.fault_tolerance import (
            render_fault_tolerance,
            run_fault_tolerance,
        )

        result = run_fault_tolerance("FB", scale=SMOKE, downtime=600.0)
        assert set(result.runs) == {"no failures", "1 outage", "3 outages"}
        worst = result.runs["3 outages"]
        assert worst.failures == 3
        assert worst.under_replicated_at_end == 0
        assert "Fault tolerance" in render_fault_tolerance(result)


class TestParallelExperimentPaths:
    """The --jobs paths fan experiment cells through the sweep
    orchestrator and must reproduce the serial figures exactly (to
    renderer precision)."""

    def test_preset_tuning_parallel_matches_serial(self):
        from repro.experiments.preset_tuning import (
            render_preset_tuning,
            run_preset_tuning,
        )

        serial = run_preset_tuning(scale=0.35, scenarios=["mlscan"])
        parallel = run_preset_tuning(scale=0.35, scenarios=["mlscan"], jobs=2)
        assert render_preset_tuning(serial) == render_preset_tuning(parallel)

    def test_scenarios_parallel_matches_serial(self):
        from repro.experiments.scenarios import render_scenarios, run_scenarios

        serial = run_scenarios(scale=0.15)
        parallel = run_scenarios(scale=0.15, jobs=2)
        assert render_scenarios(serial) == render_scenarios(parallel)
