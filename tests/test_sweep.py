"""Tests for the parallel sweep subsystem (repro.sweep).

Covers spec expansion and content hashing, the atomic resumable store,
serial/parallel result equivalence, crash isolation (raise, SIGKILL,
hang + timeout) via the test-only ``sweep.*`` conf hooks, bounded
retry, and resume-without-recompute.
"""

import json
import os
from collections import Counter

import pytest

from repro.sweep import (
    SweepSpec,
    SweepStore,
    builtin_specs,
    cell_hash,
    fingerprint,
    make_cell,
    merge_report,
    parse_policy,
    render_markdown,
    report_fingerprints,
    run_cell,
    run_cells,
    run_sweep,
)
from repro.sweep.store import atomic_write_json, read_json

#: A cheap two-cell spec (mlscan at tiny scale, two seeds) used by the
#: orchestrator tests; ``conf`` carries the crash hooks.
def tiny_spec(name="tiny", conf=None, seeds=(1, 2)):
    return SweepSpec(
        name=name,
        scenarios=("mlscan",),
        io_models=("snapshot",),
        seeds=seeds,
        scales=(0.05,),
        conf=conf or {},
    )


class TestSpec:
    def test_smoke_spec_expands_to_twelve_cells(self):
        cells = builtin_specs()["smoke"].expand()
        assert len(cells) == 12
        assert len({c.cell_id for c in cells}) == 12

    def test_expansion_is_deterministic(self):
        spec = builtin_specs()["smoke"]
        first = [c.cell_id for c in spec.expand()]
        second = [c.cell_id for c in spec.expand()]
        assert first == second

    def test_cell_hash_is_content_addressed(self):
        a = make_cell(workload="mlscan", seed=1)
        b = make_cell(workload="mlscan", seed=1)
        c = make_cell(workload="mlscan", seed=2)
        assert a.cell_id == b.cell_id
        assert a.cell_id != c.cell_id
        assert a.cell_id == cell_hash(a.config)

    def test_make_cell_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            make_cell(kind="nope", workload="mlscan")

    def test_parse_policy_forms(self):
        assert parse_policy("none") == (None, None)
        assert parse_policy("lru:osa") == ("lru", "osa")
        assert parse_policy("xgb") == ("xgb", "xgb")
        assert parse_policy({"downgrade": "lru"}) == ("lru", None)
        with pytest.raises(ValueError, match="policy"):
            parse_policy(42)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown sweep spec field"):
            SweepSpec.from_dict({"name": "x", "scenarios": ["fb"], "bogus": 1})

    def test_from_dict_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            SweepSpec.from_dict({"scenarios": ["fb"]})

    def test_spec_needs_some_workload(self):
        with pytest.raises(ValueError, match="no scenarios"):
            SweepSpec(name="empty")

    def test_round_trip_preserves_identity(self):
        spec = tiny_spec()
        again = SweepSpec.from_dict(spec.to_dict())
        assert again.spec_id == spec.spec_id
        assert [c.cell_id for c in again.expand()] == [
            c.cell_id for c in spec.expand()
        ]

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(tiny_spec().to_dict()))
        assert SweepSpec.from_file(str(path)).spec_id == tiny_spec().spec_id

    def test_unknown_params_prune_and_dedupe(self):
        spec = tiny_spec()
        grid = SweepSpec.from_dict(
            {**spec.to_dict(), "params": {"not_a_real_knob": [1, 2, 3]}}
        )
        # The pruned grid collapses; no duplicate cells survive.
        ids = [c.cell_id for c in grid.expand()]
        assert len(ids) == len(set(ids)) == len(spec.expand())

    def test_fingerprint_strips_host_keys(self):
        row = {"hit_ratio": 0.5, "runtime_seconds": 1.2,
               "events_per_second": 9.0, "rss_mb": 40.0}
        assert fingerprint(row) == {"hit_ratio": 0.5}


class TestStore:
    def test_atomic_write_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "x.json"
        atomic_write_json(path, {"a": 1})
        assert read_json(path) == {"a": 1}
        # No temp litter left behind.
        assert os.listdir(path.parent) == ["x.json"]

    def test_corrupt_payload_reads_as_missing(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"truncated": ')
        assert read_json(path) is None

    def test_completed_ids_ignores_failed_and_corrupt(self, tmp_path):
        store = SweepStore(str(tmp_path), "s")
        store.write_cell({"cell_id": "aaa", "status": "ok", "row": {}})
        store.write_cell({"cell_id": "bbb", "status": "failed", "row": None})
        store.cell_path("ccc").write_text("not json")
        assert store.completed_ids() == {"aaa"}

    def test_fresh_init_clears_cells(self, tmp_path):
        spec = tiny_spec()
        store = SweepStore(str(tmp_path), spec.name)
        store.write_cell({"cell_id": "stale", "status": "ok", "row": {}})
        store.init(spec, spec.expand(), resume=False)
        assert store.completed_ids() == set()
        assert store.manifest()["spec_id"] == spec.spec_id

    def test_resume_refuses_different_spec(self, tmp_path):
        spec = tiny_spec()
        store = SweepStore(str(tmp_path), spec.name)
        store.init(spec, spec.expand(), resume=False)
        other = tiny_spec(seeds=(7, 8))
        with pytest.raises(ValueError, match="fresh store"):
            store.init(other, other.expand(), resume=True)

    def test_resume_accepts_same_spec(self, tmp_path):
        spec = tiny_spec()
        store = SweepStore(str(tmp_path), spec.name)
        store.init(spec, spec.expand(), resume=False)
        store.write_cell({"cell_id": "keep", "status": "ok", "row": {}})
        store.init(spec, spec.expand(), resume=True)
        assert store.completed_ids() == {"keep"}


class TestWorker:
    def test_run_cell_row_shape(self):
        row = run_cell(make_cell(workload="mlscan", scale=0.05, seed=1).config)
        for key in ("scenario", "jobs_finished", "hit_ratio", "task_hours",
                    "events_processed", "runtime_seconds", "rss_mb"):
            assert key in row
        assert row["scenario"] == "mlscan"

    def test_run_cell_is_deterministic(self):
        config = make_cell(workload="mlscan", scale=0.05, seed=1).config
        assert fingerprint(run_cell(config)) == fingerprint(run_cell(config))

    def test_sampled_cell_gains_ts_columns(self):
        plain = run_cell(make_cell(workload="mlscan", scale=0.05, seed=1).config)
        assert not any(k.startswith("ts_") for k in plain)
        sampled = run_cell(
            make_cell(
                workload="mlscan",
                scale=0.05,
                seed=1,
                conf={"obs.sample_interval": 600.0},
            ).config
        )
        assert sampled["ts_samples"] >= 2
        assert sampled["ts_peak_inflight"] >= 0
        assert any(k.startswith("ts_peak_util_") for k in sampled)
        # Sampling must not move any simulated workload metric.
        exempt = {
            "events_processed", "events_cancelled", "max_heap_size",
            "live_pending_at_end", "runtime_seconds", "events_per_second",
            "rss_mb", "heap_compactions",
        }
        for key, value in plain.items():
            if key not in exempt:
                assert sampled[key] == value, key

    def test_profile_cell_runs_classic_trace(self):
        row = run_cell(
            make_cell(
                kind="profile", workload="FB", scale=0.05, seed=42,
                system_seed=42, downgrade="lru", upgrade="osa",
            ).config
        )
        assert row["workload"] == "FB"
        assert row["jobs_finished"] > 0


class TestOrchestrator:
    def test_parallel_matches_serial_exactly(self, tmp_path):
        spec = tiny_spec()
        cells = spec.expand()
        serial_store = SweepStore(str(tmp_path / "serial"), spec.name)
        serial_store.init(spec, cells, resume=False)
        serial = run_cells(cells, serial_store, jobs=1)
        parallel_store = SweepStore(str(tmp_path / "parallel"), spec.name)
        parallel_store.init(spec, cells, resume=False)
        parallel = run_cells(cells, parallel_store, jobs=2)
        assert report_fingerprints(
            merge_report(spec, serial)
        ) == report_fingerprints(merge_report(spec, parallel))

    def test_raise_isolates_one_cell(self, tmp_path):
        spec = tiny_spec(
            conf={"sweep.test_crash": "raise", "sweep.test_crash_seed": 2}
        )
        cells = spec.expand()
        store = SweepStore(str(tmp_path), spec.name)
        store.init(spec, cells, resume=False)
        payloads = run_cells(cells, store, jobs=2, retries=1)
        by_seed = {p["cell"]["seed"]: p for p in payloads}
        assert by_seed[1]["status"] == "ok"
        assert by_seed[2]["status"] == "failed"
        assert "injected failure" in by_seed[2]["error"]
        # retries=1 means the failing cell was attempted twice.
        assert by_seed[2]["attempts"] == 2

    def test_sigkill_fails_one_cell_not_the_sweep(self, tmp_path):
        spec = tiny_spec(
            conf={"sweep.test_crash": "sigkill", "sweep.test_crash_seed": 2}
        )
        cells = spec.expand()
        store = SweepStore(str(tmp_path), spec.name)
        store.init(spec, cells, resume=False)
        payloads = run_cells(cells, store, jobs=2, retries=0)
        by_seed = {p["cell"]["seed"]: p for p in payloads}
        assert by_seed[1]["status"] == "ok"
        assert by_seed[2]["status"] == "failed"
        assert "worker died" in by_seed[2]["error"]

    def test_hang_is_killed_by_cell_timeout(self, tmp_path):
        spec = tiny_spec(
            conf={"sweep.test_crash": "hang", "sweep.test_crash_seed": 2}
        )
        cells = spec.expand()
        store = SweepStore(str(tmp_path), spec.name)
        store.init(spec, cells, resume=False)
        payloads = run_cells(cells, store, jobs=2, timeout=5.0, retries=0)
        by_seed = {p["cell"]["seed"]: p for p in payloads}
        assert by_seed[1]["status"] == "ok"
        assert by_seed[2]["status"] == "failed"
        assert "timeout" in by_seed[2]["error"]

    def test_transient_failure_recovers_via_retry(self, tmp_path):
        once_dir = tmp_path / "once"
        once_dir.mkdir()
        spec = tiny_spec(
            conf={
                "sweep.test_crash": "raise",
                "sweep.test_crash_once_dir": str(once_dir),
            },
            seeds=(1,),
        )
        cells = spec.expand()
        store = SweepStore(str(tmp_path / "store"), spec.name)
        store.init(spec, cells, resume=False)
        (payload,) = run_cells(cells, store, jobs=1, retries=1)
        assert payload["status"] == "ok"
        assert payload["attempts"] == 2

    def test_retry_budget_is_bounded(self, tmp_path):
        spec = tiny_spec(conf={"sweep.test_crash": "raise"}, seeds=(1,))
        cells = spec.expand()
        store = SweepStore(str(tmp_path), spec.name)
        store.init(spec, cells, resume=False)
        (payload,) = run_cells(cells, store, jobs=1, retries=2)
        assert payload["status"] == "failed"
        assert payload["attempts"] == 3


def _touch_counts(touch_dir) -> Counter:
    """Executions per cell id recorded by the sweep.test_touch_dir hook."""
    return Counter(p.name.split(".")[0] for p in touch_dir.iterdir())


class TestResume:
    def test_resume_runs_only_the_remainder(self, tmp_path):
        touch_dir = tmp_path / "touch"
        touch_dir.mkdir()
        spec = tiny_spec(conf={"sweep.test_touch_dir": str(touch_dir)})
        cells = spec.expand()
        store = SweepStore(str(tmp_path / "store"), spec.name)
        store.init(spec, cells, resume=False)

        # Interrupted sweep: only the first cell completed.
        run_cells(cells[:1], store, jobs=1)
        assert _touch_counts(touch_dir) == {cells[0].cell_id: 1}

        # Resume finishes the remainder without re-running cell 0.
        store.init(spec, cells, resume=True)
        payloads = run_cells(cells, store, jobs=1, resume=True)
        assert all(p["status"] == "ok" for p in payloads)
        assert _touch_counts(touch_dir) == {
            cells[0].cell_id: 1,
            cells[1].cell_id: 1,
        }

        # The merged report equals a clean, uninterrupted run.
        clean_store = SweepStore(str(tmp_path / "clean"), spec.name)
        clean_store.init(spec, cells, resume=False)
        clean = run_cells(cells, clean_store, jobs=1)
        assert report_fingerprints(
            merge_report(spec, payloads)
        ) == report_fingerprints(merge_report(spec, clean))

    def test_corrupt_cell_is_recomputed_on_resume(self, tmp_path):
        spec = tiny_spec()
        cells = spec.expand()
        store = SweepStore(str(tmp_path), spec.name)
        store.init(spec, cells, resume=False)
        run_cells(cells, store, jobs=1)
        # A worker killed mid-write leaves nothing (atomic rename), but a
        # truncated file must also read as missing.
        store.cell_path(cells[0].cell_id).write_text('{"cell_id": ')
        store.init(spec, cells, resume=True)
        payloads = run_cells(cells, store, jobs=1, resume=True)
        assert all(p["status"] == "ok" for p in payloads)

    def test_failed_cells_rerun_on_resume(self, tmp_path):
        spec = tiny_spec(
            conf={"sweep.test_crash": "raise", "sweep.test_crash_seed": 2}
        )
        cells = spec.expand()
        store = SweepStore(str(tmp_path), spec.name)
        store.init(spec, cells, resume=False)
        first = run_cells(cells, store, jobs=1, retries=0)
        assert {p["status"] for p in first} == {"ok", "failed"}
        # Clearing the hook is a different spec; keep it and observe the
        # failed cell being retried (it fails again — the point is that
        # resume does not treat "failed" as done).
        store.init(spec, cells, resume=True)
        again = run_cells(cells, store, jobs=1, retries=0, resume=True)
        by_seed = {p["cell"]["seed"]: p for p in again}
        assert by_seed[1]["status"] == "ok"
        assert by_seed[2]["status"] == "failed"


class TestRunSweepAndReport:
    def test_ephemeral_run_sweep_report_shape(self):
        report = run_sweep(tiny_spec(), jobs=1)
        assert report["benchmark"] == "sweep"
        assert report["summary"]["cells"] == 2
        assert report["summary"]["completed"] == 2
        assert report["summary"]["failed"] == 0
        assert set(report["cells"]) == {
            c.cell_id for c in tiny_spec().expand()
        }
        assert report["sweep_wall_seconds"] >= 0.0

    def test_persistent_run_sweep_writes_report(self, tmp_path):
        spec = tiny_spec()
        report = run_sweep(spec, store_root=str(tmp_path), jobs=1)
        on_disk = read_json(tmp_path / spec.name / "report.json")
        assert on_disk["spec_id"] == report["spec_id"]
        assert report_fingerprints(on_disk) == report_fingerprints(report)

    def test_markdown_renders_ok_and_failed_rows(self, tmp_path):
        spec = tiny_spec(
            conf={"sweep.test_crash": "raise", "sweep.test_crash_seed": 2}
        )
        report = run_sweep(
            spec, store_root=str(tmp_path), jobs=1, retries=0
        )
        text = render_markdown(report)
        assert "mlscan" in text
        assert "**failed**" in text
        assert "injected failure" in text


class TestComposites:
    """Composite (composed-workload) sweep cells and their canonical hashing."""

    SPEC = {
        "op": "overlay",
        "sources": [
            {"op": "scenario", "name": "mlscan", "seed": 1, "scale": 0.05},
            {"op": "scenario", "name": "static", "seed": 2, "scale": 0.05},
        ],
    }

    def test_equal_specs_hash_to_the_same_cell(self):
        # Field order, filled-in defaults, identity timescale, and
        # int/float parameter spellings must all canonicalize away.
        verbose = {
            "isolate": True,
            "sources": [
                {"params": {}, "scale": 0.05, "seed": 1, "name": "mlscan",
                 "op": "scenario"},
                {"op": "timescale", "factor": 1.0,
                 "source": {"op": "scenario", "name": "static", "seed": 2,
                            "scale": 0.05}},
            ],
            "op": "overlay",
        }
        a = make_cell(kind="compose", workload="mix",
                      params={"spec": self.SPEC})
        b = make_cell(kind="compose", workload="mix",
                      params={"spec": verbose})
        assert a.cell_id == b.cell_id

    def test_compose_cells_pin_cell_level_seed_and_scale(self):
        with pytest.raises(ValueError, match="pin seed/scale"):
            make_cell(kind="compose", workload="mix",
                      params={"spec": self.SPEC}, seed=7)
        with pytest.raises(ValueError, match="spec"):
            make_cell(kind="compose", workload="mix", params={})

    def test_spec_with_composites_expands_and_round_trips(self):
        spec = SweepSpec(
            name="mix",
            composites=(self.SPEC,),
            io_models=("snapshot", "fairshare"),
        )
        cells = spec.expand()
        assert len(cells) == 2  # composites cross io_models, not seeds
        assert all(c.config["kind"] == "compose" for c in cells)
        assert all(
            c.config["workload"] == "overlay(mlscan,static)" for c in cells
        )
        again = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert [c.cell_id for c in again.expand()] == [
            c.cell_id for c in cells
        ]

    def test_run_cell_executes_a_compose_cell(self):
        cell = make_cell(
            kind="compose",
            workload="overlay(mlscan,static)",
            params={"spec": self.SPEC},
            downgrade="lru",
            upgrade="osa",
        )
        row = run_cell(cell.config)
        assert row["workload"] == "overlay(mlscan,static)"
        assert row["jobs_finished"] > 0
        assert fingerprint(row) == fingerprint(run_cell(cell.config))
