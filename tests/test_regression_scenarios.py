"""Replay gate for the frozen regression corpus (tests/regression_scenarios).

Every ``*.json`` under ``tests/regression_scenarios/`` is a pathology
case found by ``repro fuzz`` and frozen as a minimal replayable spec:
the composition, the memory-pressured system it ran under, the metric
threshold it crossed, and the observed score under both I/O models.
This module auto-collects the corpus and replays each case end to end:

* the observed score must reproduce **exactly** (to the frozen 6-decimal
  rounding) under both ``snapshot`` and ``fairshare`` — any behaviour
  drift on these adversarial workloads fails loudly;
* the score must still cross the case's recorded threshold (the
  pathology stays a pathology — if a policy change genuinely fixes it,
  re-freeze the case with the improved observed scores);
* the frozen spec must be canonical (hash-stable for sweep cells), its
  workload must rebuild bit-deterministically, and the file must carry
  a human-readable comment naming the pathology and threshold.

Dropping a new case into the directory adds it to the gate with no code
changes (see docs/scenarios.md for the freeze workflow).
"""

import json
import os

import pytest

from repro.workload.compose import build_compose, canonical_spec, spec_hash
from repro.workload.fuzz import DIMENSION_NAMES, load_cases, score_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "regression_scenarios")
CASES = load_cases(CORPUS_DIR)
CASE_IDS = [case["_file"] for case in CASES]
IO_MODELS = ("snapshot", "fairshare")


def test_corpus_ships_at_least_three_distinct_dimensions():
    assert len(CASES) >= 3
    dimensions = {case["pathology"] for case in CASES}
    assert dimensions == set(DIMENSION_NAMES), (
        "the shipped corpus must pin every scoring dimension"
    )


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_case_is_well_formed(case):
    assert case["pathology"] in DIMENSION_NAMES
    assert set(case["observed"]) == set(IO_MODELS)
    # The comment names the pathology and the threshold it pins.
    assert case["pathology"] in case["comment"]
    assert f"threshold {case['threshold']:g}" in case["comment"]
    # The spec is stored canonically, so its hash matches the file name.
    assert case["spec"] == canonical_spec(case["spec"])
    expected = f"{case['pathology']}_{spec_hash(case['spec'])}.json"
    assert case["_file"] == expected


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_case_workload_rebuilds_deterministically(case):
    stream = build_compose(case["spec"])
    first = [repr(event) for event in stream.events()]
    assert first, "a frozen case must describe a non-empty workload"
    assert first == [repr(event) for event in build_compose(case["spec"]).events()]


@pytest.mark.parametrize("io_model", IO_MODELS)
@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_case_replays_bit_deterministically(case, io_model):
    score, _ = score_case(case, io_model)
    assert round(score, 6) == case["observed"][io_model], (
        f"{case['_file']} drifted under {io_model}: the frozen workload "
        f"no longer reproduces its pinned {case['metric']} score"
    )
    assert score >= case["threshold"], (
        f"{case['_file']} no longer crosses its pathology threshold — "
        "if a policy change fixed it, re-freeze the case"
    )


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_case_replays_from_file_via_cli_spec_path(case, tmp_path):
    # The acceptance path: `repro scenario run compose --spec FILE` must
    # accept the frozen file itself (parse_spec unwraps the "spec" key).
    from repro.workload.compose import parse_spec

    path = os.path.join(CORPUS_DIR, case["_file"])
    assert parse_spec(path) == case["spec"]


def test_corpus_files_are_pretty_printed_json():
    for case in CASES:
        path = os.path.join(CORPUS_DIR, case["_file"])
        text = open(path, encoding="utf-8").read()
        data = json.loads(text)
        data.pop("_file", None)
        expected = json.dumps(
            {k: v for k, v in case.items() if k != "_file"},
            indent=2,
            sort_keys=True,
        ) + "\n"
        assert text == expected
