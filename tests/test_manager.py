"""Tests for the Replication Manager's orchestration loops."""

import pytest

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager, configure_policies
from repro.dfs import DFSClient, Master, NodeManager, OctopusPlacementPolicy
from repro.sim import Simulator


def make_stack(workers=3, memory=1 * GB, conf=None):
    sim = Simulator()
    conf = conf if conf is not None else Configuration()
    topo = build_local_cluster(num_workers=workers, memory_per_node=memory)
    nm = NodeManager(topo)
    master = Master(topo, OctopusPlacementPolicy(topo, nm, conf), sim, conf)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim, conf)
    return sim, master, client, manager


class TestDowngradeLoop:
    def test_memory_stabilizes_between_thresholds(self):
        sim, master, client, manager = make_stack()
        configure_policies(manager, downgrade="lru")
        # Write well past memory capacity (3GB aggregate).
        for i in range(40):
            client.create(f"/f{i}", 256 * MB)
            sim.run(until=sim.now() + 30)
        sim.run(until=sim.now() + 600)
        util = master.tier_utilization(StorageTier.MEMORY)
        assert util <= 0.92  # never runaway above the start threshold
        assert manager.monitor.bytes_downgraded[StorageTier.MEMORY] > 0

    def test_no_downgrades_below_threshold(self):
        sim, master, client, manager = make_stack()
        configure_policies(manager, downgrade="lru")
        client.create("/small", 64 * MB)
        sim.run(until=sim.now() + 600)
        assert manager.monitor.bytes_downgraded[StorageTier.MEMORY] == 0

    def test_cascade_memory_to_ssd_to_hdd(self):
        # Tiny SSD so memory downgrades overflow into SSD downgrades.
        sim, master, client, manager = make_stack(memory=1 * GB)
        # Shrink the SSD by pre-filling most of it.
        for node in master.topology.nodes:
            device = node.devices(StorageTier.SSD)[0]
            device.allocate(-1, device.capacity - 512 * MB)
        configure_policies(manager, downgrade="lru")
        for i in range(40):
            client.create(f"/f{i}", 256 * MB)
            sim.run(until=sim.now() + 30)
        sim.run(until=sim.now() + 900)
        # Memory evictions overflowed the tiny SSD, which itself shed
        # files down to HDD — the cascading downgrade of Algorithm 1.
        assert manager.monitor.bytes_downgraded[StorageTier.SSD] > 0

    def test_run_returns_zero_without_policy(self):
        sim, master, client, manager = make_stack()
        client.create("/f", 64 * MB)
        assert manager.run_downgrade(StorageTier.MEMORY) == 0


class TestUpgradeLoop:
    def test_osa_upgrade_on_access(self):
        # Memory sized so the 90/85% threshold band leaves more than one
        # block of headroom per node (as the paper's 4GB nodes do).
        sim, master, client, manager = make_stack(memory=2 * GB)
        configure_policies(manager, downgrade="lru", upgrade="osa")
        # Fill memory so some files end up without memory replicas.
        files = []
        for i in range(56):
            files.append(client.create(f"/f{i}", 128 * MB))
            sim.run(until=sim.now() + 30)
        sim.run(until=sim.now() + 600)
        demoted = [
            f
            for f in files
            if not master.blocks.file_has_tier(f, StorageTier.MEMORY)
        ]
        assert demoted, "expected at least one file without a memory copy"
        target = demoted[0]
        client.open(target.path)
        sim.run(until=sim.now() + 600)
        assert master.blocks.file_has_tier(target, StorageTier.MEMORY)

    def test_upgrade_ignored_without_policy(self):
        sim, master, client, manager = make_stack()
        configure_policies(manager, downgrade="lru")
        client.create("/f", 64 * MB)
        client.open("/f")
        assert manager.monitor.bytes_upgraded[StorageTier.MEMORY] == 0

    def test_proactive_tick_noop_for_reactive_policies(self):
        sim, master, client, manager = make_stack()
        configure_policies(manager, upgrade="osa")
        client.create("/f", 64 * MB)
        assert manager.run_upgrade(None) == 0


class TestEventBookkeeping:
    def test_stats_follow_lifecycle(self):
        sim, master, client, manager = make_stack()
        file = client.create("/f", 64 * MB)
        assert manager.stats.get(file) is not None
        client.open("/f")
        assert manager.stats.get(file).total_accesses == 1
        client.delete("/f")
        assert manager.stats.get(file) is None

    def test_shared_weight_trackers_single_update(self):
        sim, master, client, manager = make_stack()
        configure_policies(manager, downgrade="lrfu", upgrade="lrfu")
        file = client.create("/f", 64 * MB)
        client.open("/f")
        # Both policies share one tracker: a single access updates the
        # weight exactly once (W = 1 + decay(dt)*1 < 2 + epsilon).
        weight = manager.lrfu_weights.raw_weight(file)
        assert weight == pytest.approx(2.0, abs=0.01)

    def test_stop_halts_periodic_work(self):
        sim, master, client, manager = make_stack()
        configure_policies(manager, downgrade="xgb", upgrade="xgb")
        manager.stop()
        before = sim.events_processed
        sim.run(until=sim.now() + 3600)
        # Only already-queued (cancelled) events may pop; no new work.
        assert sim.events_processed - before <= 2


class TestEndToEndPairs:
    @pytest.mark.parametrize("downgrade,upgrade", [
        ("lru", "osa"), ("lrfu", "lrfu"), ("exd", "exd"), ("xgb", "xgb"),
        ("lfu", None), ("life", None), ("lfu-f", None),
    ])
    def test_pairs_run_clean(self, downgrade, upgrade):
        sim, master, client, manager = make_stack()
        configure_policies(manager, downgrade=downgrade, upgrade=upgrade)
        for i in range(15):
            client.create(f"/f{i}", 128 * MB)
            if i % 3 == 0:
                client.open(f"/f{max(i - 1, 0)}")
            sim.run(until=sim.now() + 60)
        sim.run(until=sim.now() + 600)
        # Invariant: all device accounting balanced, no stuck tickets.
        assert master.open_ticket_count() == 0

    def test_unknown_policy_rejected(self):
        _, _, _, manager = make_stack()
        with pytest.raises(ValueError):
            configure_policies(manager, downgrade="nope")
        with pytest.raises(ValueError):
            configure_policies(manager, upgrade="nope")
