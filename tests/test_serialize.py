"""Tests for model and trace serialization."""

import numpy as np
import pytest

from repro.ml.gbt import GBTParams, GradientBoostedTrees
from repro.ml.serialize import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.workload import FB_PROFILE, scaled_profile, synthesize_trace
from repro.workload.serialize import (
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


def fitted_model(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((300, 5))
    X[rng.random((300, 5)) < 0.1] = np.nan
    y = (np.nan_to_num(X[:, 0], nan=0.8) > 0.5).astype(int)
    model = GradientBoostedTrees(GBTParams(num_rounds=4, max_depth=4)).fit(X, y)
    return model, X


class TestModelSerialization:
    def test_roundtrip_predictions_identical(self):
        model, X = fitted_model()
        clone = model_from_dict(model_to_dict(model))
        assert np.allclose(model.predict_proba(X), clone.predict_proba(X))

    def test_roundtrip_preserves_params(self):
        model, _ = fitted_model()
        clone = model_from_dict(model_to_dict(model))
        assert clone.params == model.params
        assert clone.num_trees == model.num_trees

    def test_file_roundtrip(self, tmp_path):
        model, X = fitted_model()
        path = str(tmp_path / "model.json")
        save_model(model, path)
        loaded = load_model(path)
        assert np.allclose(model.predict_proba(X), loaded.predict_proba(X))

    def test_missing_value_routing_survives(self):
        model, _ = fitted_model()
        clone = model_from_dict(model_to_dict(model))
        probe = np.full((1, 5), np.nan)
        assert model.predict_proba(probe)[0] == pytest.approx(
            clone.predict_proba(probe)[0]
        )

    def test_unfitted_rejected(self):
        from repro.ml.serialize import tree_to_dict
        from repro.ml.tree import RegressionTree

        with pytest.raises(ValueError):
            tree_to_dict(RegressionTree())

    def test_bad_version_rejected(self):
        model, _ = fitted_model()
        data = model_to_dict(model)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            model_from_dict(data)


class TestTraceSerialization:
    def test_roundtrip_equality(self):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=3)
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.name == trace.name
        assert clone.duration == trace.duration
        assert len(clone.jobs) == len(trace.jobs)
        assert [c.path for c in clone.creations] == [c.path for c in trace.creations]
        for a, b in zip(clone.jobs, trace.jobs):
            assert a.input_paths == b.input_paths
            assert a.outputs == b.outputs
            assert a.submit_time == b.submit_time

    def test_statistics_preserved(self):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=3)
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.total_bytes == trace.total_bytes
        assert clone.never_read_fraction() == trace.never_read_fraction()

    def test_file_roundtrip(self, tmp_path):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=4)
        path = str(tmp_path / "trace.json")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.file_count == trace.file_count

    def test_bad_version_rejected(self):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=5)
        data = trace_to_dict(trace)
        data["format_version"] = 0
        with pytest.raises(ValueError):
            trace_from_dict(data)
