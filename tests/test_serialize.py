"""Tests for model and trace serialization."""

import numpy as np
import pytest

from repro.ml.gbt import GBTParams, GradientBoostedTrees
from repro.ml.serialize import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.workload import FB_PROFILE, scaled_profile, synthesize_trace
from repro.workload.jobs import FileCreation, FileDeletion, OutputSpec, TraceJob
from repro.workload.serialize import (
    EventWriter,
    event_from_dict,
    event_to_dict,
    iter_events,
    load_trace,
    read_stream_header,
    save_events,
    save_trace,
    stream_duration,
    trace_from_dict,
    trace_to_dict,
)


def fitted_model(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((300, 5))
    X[rng.random((300, 5)) < 0.1] = np.nan
    y = (np.nan_to_num(X[:, 0], nan=0.8) > 0.5).astype(int)
    model = GradientBoostedTrees(GBTParams(num_rounds=4, max_depth=4)).fit(X, y)
    return model, X


class TestModelSerialization:
    def test_roundtrip_predictions_identical(self):
        model, X = fitted_model()
        clone = model_from_dict(model_to_dict(model))
        assert np.allclose(model.predict_proba(X), clone.predict_proba(X))

    def test_roundtrip_preserves_params(self):
        model, _ = fitted_model()
        clone = model_from_dict(model_to_dict(model))
        assert clone.params == model.params
        assert clone.num_trees == model.num_trees

    def test_file_roundtrip(self, tmp_path):
        model, X = fitted_model()
        path = str(tmp_path / "model.json")
        save_model(model, path)
        loaded = load_model(path)
        assert np.allclose(model.predict_proba(X), loaded.predict_proba(X))

    def test_missing_value_routing_survives(self):
        model, _ = fitted_model()
        clone = model_from_dict(model_to_dict(model))
        probe = np.full((1, 5), np.nan)
        assert model.predict_proba(probe)[0] == pytest.approx(
            clone.predict_proba(probe)[0]
        )

    def test_unfitted_rejected(self):
        from repro.ml.serialize import tree_to_dict
        from repro.ml.tree import RegressionTree

        with pytest.raises(ValueError):
            tree_to_dict(RegressionTree())

    def test_bad_version_rejected(self):
        model, _ = fitted_model()
        data = model_to_dict(model)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            model_from_dict(data)


class TestTraceSerialization:
    def test_roundtrip_equality(self):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=3)
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.name == trace.name
        assert clone.duration == trace.duration
        assert len(clone.jobs) == len(trace.jobs)
        assert [c.path for c in clone.creations] == [c.path for c in trace.creations]
        for a, b in zip(clone.jobs, trace.jobs):
            assert a.input_paths == b.input_paths
            assert a.outputs == b.outputs
            assert a.submit_time == b.submit_time

    def test_statistics_preserved(self):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=3)
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.total_bytes == trace.total_bytes
        assert clone.never_read_fraction() == trace.never_read_fraction()

    def test_file_roundtrip(self, tmp_path):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=4)
        path = str(tmp_path / "trace.json")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.file_count == trace.file_count

    def test_bad_version_rejected(self):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=5)
        data = trace_to_dict(trace)
        data["format_version"] = 0
        with pytest.raises(ValueError):
            trace_from_dict(data)


SAMPLE_EVENTS = [
    FileCreation("/data/a", 64, 0.0),
    TraceJob(
        job_id=0,
        submit_time=5.0,
        input_paths=["/data/a"],
        input_size=64,
        outputs=[OutputSpec("/out/a", 16)],
        cpu_seconds_per_byte=1e-8,
    ),
    FileDeletion("/data/a", 9.0),
]


class TestEventCodec:
    @pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=["create", "job", "delete"])
    def test_round_trip(self, event):
        assert event_from_dict(event_to_dict(event)) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "munge"})

    def test_not_an_event_rejected(self):
        with pytest.raises(TypeError):
            event_to_dict("nope")

    def test_job_defaults_tolerated(self):
        job = event_from_dict({"kind": "job", "time": 1.0, "inputs": ["/a"]})
        assert job.job_id == -1
        assert job.input_size == 0
        assert job.outputs == []


class TestStreamingJsonl:
    @pytest.mark.parametrize("suffix", ["jsonl", "jsonl.gz"])
    def test_trace_round_trip(self, tmp_path, suffix):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=3)
        path = str(tmp_path / f"trace.{suffix}")
        written = save_events(trace, path)
        events = list(iter_events(path))
        assert written == len(events)
        assert events == list(trace.events())
        header = read_stream_header(path)
        assert header["name"] == trace.name
        assert header["duration"] == trace.duration
        assert stream_duration(path) == trace.duration

    def test_append_writer_continues_a_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with EventWriter(path, name="t", duration=10.0) as writer:
            writer.write(SAMPLE_EVENTS[0])
        with EventWriter(path, append=True) as writer:
            writer.write_all(SAMPLE_EVENTS[1:])
            assert writer.events_written == 2
        assert list(iter_events(path)) == SAMPLE_EVENTS

    def test_write_after_close_rejected(self, tmp_path):
        writer = EventWriter(str(tmp_path / "t.jsonl"))
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.write(SAMPLE_EVENTS[0])

    def test_headerless_file_readable(self, tmp_path):
        path = tmp_path / "raw.jsonl"
        path.write_text('{"kind": "create", "time": 1.0, "path": "/a", "bytes": 5}\n')
        assert read_stream_header(str(path)) == {}
        assert list(iter_events(str(path))) == [FileCreation("/a", 5, 1.0)]
        assert stream_duration(str(path)) == 1.0

    def test_bad_stream_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "format_version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            read_stream_header(str(path))

    def test_misplaced_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "create", "time": 1.0, "path": "/a", "bytes": 5}\n'
            '{"kind": "header", "format_version": 1}\n'
        )
        with pytest.raises(ValueError, match="header after first line"):
            list(iter_events(str(path)))

    def test_save_events_is_streaming(self, tmp_path):
        """save_events drains a generator without materializing it."""

        def generator():
            for event in SAMPLE_EVENTS:
                yield event

        path = str(tmp_path / "gen.jsonl")
        assert save_events(generator(), path, name="gen", duration=9.0) == 3
        assert list(iter_events(path)) == SAMPLE_EVENTS
