"""Tests for the data-driven tier model (TierSpec / TierHierarchy)."""

import pytest

from repro.cluster import (
    DEFAULT_HIERARCHY,
    StorageTier,
    TierHierarchy,
    TierSpec,
    build_tiered_cluster,
    get_hierarchy,
    hierarchy_names,
    register_hierarchy,
)
from repro.cluster.hardware import HDD_MEDIA, MEMORY_MEDIA, MediaProfile
from repro.common.units import GB
from repro.ml.features import FeatureSpec, build_feature_vector, feature_names


class TestTierSpec:
    def test_levels_follow_declaration_order(self):
        h = get_hierarchy("nvme4")
        assert [t.name for t in h] == ["MEMORY", "NVME", "SSD", "HDD"]
        assert [t.level for t in h] == [0, 1, 2, 3]

    def test_ordering_and_extremes(self):
        h = get_hierarchy("nvme4")
        assert h.tier("MEMORY") < h.tier("NVME") < h.tier("SSD") < h.tier("HDD")
        assert min(h) is h.highest
        assert max(h) is h.lowest
        assert h.highest.is_highest and not h.highest.is_lowest
        assert h.lowest.is_lowest and not h.lowest.is_highest

    def test_navigation(self):
        h = get_hierarchy("nvme4")
        nvme = h.tier("NVME")
        assert nvme.higher is h.tier("MEMORY")
        assert nvme.lower is h.tier("SSD")
        assert nvme.higher_tiers() == (h.tier("MEMORY"),)
        assert nvme.lower_tiers() == (h.tier("SSD"), h.tier("HDD"))
        assert h.highest.higher is None
        assert h.lowest.lower is None

    def test_unbound_spec_rejects_navigation(self):
        loose = TierSpec(name="X", media=HDD_MEDIA, default_capacity=GB)
        with pytest.raises(ValueError):
            loose.hierarchy

    def test_str_and_index(self):
        hdd = DEFAULT_HIERARCHY.tier("hdd")
        assert str(hdd) == "HDD"
        assert int(hdd) == 2


class TestTierHierarchy:
    def test_lookup_is_case_insensitive(self):
        assert DEFAULT_HIERARCHY.tier("memory") is StorageTier.MEMORY

    def test_unknown_tier_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_HIERARCHY.tier("TAPE")

    def test_contains_names_and_specs(self):
        assert "ssd" in DEFAULT_HIERARCHY
        assert StorageTier.SSD in DEFAULT_HIERARCHY
        assert "NVME" not in DEFAULT_HIERARCHY

    def test_adjacent_pairs(self):
        pairs = get_hierarchy("mem-hdd").adjacent_pairs()
        assert [(a.name, b.name) for a, b in pairs] == [("MEMORY", "HDD")]

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            TierHierarchy("empty", [])

    def test_duplicate_names_rejected(self):
        spec = TierSpec(name="X", media=HDD_MEDIA, default_capacity=GB)
        with pytest.raises(ValueError):
            TierHierarchy("dup", [spec, spec])

    def test_remote_tier_excluded_from_local(self):
        h = get_hierarchy("remote5")
        assert h.lowest.name == "REMOTE"
        assert h.lowest.remote
        assert h.lowest_local.name == "HDD"
        assert all(not t.remote for t in h.local_tiers)

    def test_presets_are_shared_singletons(self):
        assert get_hierarchy("default3") is get_hierarchy("default3")
        assert get_hierarchy("default3") is DEFAULT_HIERARCHY

    def test_registry_names_and_unknown(self):
        for name in ("default3", "mem-hdd", "nvme4", "remote5"):
            assert name in hierarchy_names()
        with pytest.raises(KeyError):
            get_hierarchy("no-such-hierarchy")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_hierarchy(
                "default3", lambda: TierHierarchy("default3", [])
            )

    def test_default3_cannot_be_replaced(self):
        # DEFAULT_HIERARCHY and the StorageTier facade are bound to the
        # default3 specs at import; replacing the preset would orphan them.
        with pytest.raises(ValueError, match="cannot be replaced"):
            register_hierarchy(
                "default3",
                lambda: TierHierarchy("default3", []),
                replace=True,
            )


class TestStorageTierShim:
    def test_attributes_are_default_specs(self):
        assert StorageTier.MEMORY is DEFAULT_HIERARCHY.tier("MEMORY")
        assert StorageTier.HDD is DEFAULT_HIERARCHY.lowest

    def test_iteration_and_len(self):
        assert list(StorageTier) == list(DEFAULT_HIERARCHY.tiers)
        assert len(StorageTier) == 3

    def test_media_profiles_faster_up_the_stack(self):
        tiers = list(get_hierarchy("remote5"))
        for higher, lower in zip(tiers, tiers[1:]):
            assert higher.media.read_bw > lower.media.read_bw
            assert higher.media.seek_latency < lower.media.seek_latency
            assert higher.score > lower.score


class TestBuildTieredCluster:
    def test_default3_matches_local_cluster_shape(self):
        topo = build_tiered_cluster(3)
        node = topo.nodes[0]
        assert node.tier_capacity(StorageTier.MEMORY) == 4 * GB
        assert node.tier_capacity(StorageTier.SSD) == 64 * GB
        assert node.tier_capacity(StorageTier.HDD) == 400 * GB
        assert len(node.devices(StorageTier.HDD)) == 3
        assert topo.hierarchy is DEFAULT_HIERARCHY

    def test_capacity_overrides_by_name(self):
        topo = build_tiered_cluster(2, capacity_overrides={"memory": 8 * GB})
        assert topo.nodes[0].tier_capacity(StorageTier.MEMORY) == 8 * GB

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError):
            build_tiered_cluster(2, capacity_overrides={"TAPE": GB})

    def test_four_tier_nodes(self):
        h = get_hierarchy("nvme4")
        topo = build_tiered_cluster(2, tiers="nvme4")
        node = topo.nodes[0]
        assert node.tiers() == list(h)
        assert node.tier_capacity(h.tier("NVME")) == 32 * GB

    def test_default_scores_derived_from_bandwidth(self):
        # Specs registered without explicit scores must not zero the
        # placement throughput term.
        h = TierHierarchy(
            "noscores",
            [
                TierSpec("A", MEMORY_MEDIA, GB),
                TierSpec("B", HDD_MEDIA, GB),
            ],
        )
        assert h.tier("A").score == pytest.approx(1.0)
        assert 0.0 < h.tier("B").score < h.tier("A").score

    def test_foreign_hierarchy_spec_raises(self):
        # A spec from a different hierarchy must raise, not silently
        # report an empty tier.
        topo = build_tiered_cluster(1, tiers="mem-hdd")
        foreign = get_hierarchy("nvme4").tier("SSD")
        with pytest.raises(KeyError):
            topo.nodes[0].tier_capacity(foreign)

    def test_mixed_hierarchy_nodes_rejected(self):
        topo = build_tiered_cluster(1, tiers="mem-hdd")
        from repro.cluster import Node, TierProvision

        other = get_hierarchy("nvme4")
        stranger = Node(
            "worker999",
            "rack0",
            [TierProvision(other.tier("HDD"), GB)],
        )
        with pytest.raises(ValueError):
            topo.add_node(stranger)


class TestTierFeature:
    def test_default_spec_unchanged(self):
        spec = FeatureSpec()
        assert not spec.include_tier
        assert "tier_level" not in feature_names(spec)

    def test_for_hierarchy_sizes_the_feature(self):
        spec = FeatureSpec.for_hierarchy(get_hierarchy("remote5"))
        assert spec.include_tier
        assert spec.num_tiers == 5
        assert spec.num_features == FeatureSpec().num_features + 1
        assert "tier_level" in feature_names(spec)

    def test_tier_level_normalized(self):
        spec = FeatureSpec.for_hierarchy(get_hierarchy("nvme4"))
        names = feature_names(spec)
        idx = names.index("tier_level")
        vec = build_feature_vector(spec, GB, 0.0, [10.0], 20.0, tier_level=3)
        assert vec[idx] == pytest.approx(1.0)
        vec = build_feature_vector(spec, GB, 0.0, [10.0], 20.0, tier_level=0)
        assert vec[idx] == pytest.approx(0.0)

    def test_missing_tier_is_nan(self):
        import numpy as np

        spec = FeatureSpec.for_hierarchy(get_hierarchy("nvme4"))
        idx = feature_names(spec).index("tier_level")
        vec = build_feature_vector(spec, GB, 0.0, [], 20.0)
        assert np.isnan(vec[idx])

    def test_vector_alignment_with_names(self):
        spec = FeatureSpec.for_hierarchy(get_hierarchy("mem-hdd"))
        vec = build_feature_vector(spec, GB, 0.0, [5.0, 10.0], 20.0, tier_level=1)
        assert len(vec) == len(feature_names(spec)) == spec.num_features

    def test_for_hierarchy_accepts_field_overrides(self):
        # Regression: overriding a field for_hierarchy also sets must not
        # raise "got multiple values".
        spec = FeatureSpec.for_hierarchy(get_hierarchy("nvme4"), num_tiers=7, k=6)
        assert spec.num_tiers == 7
        assert spec.k == 6
        assert spec.include_tier

    def test_tier_level_at_is_reference_consistent(self):
        # Training features must use the tier recorded at or before the
        # reference time, never the current tier (which the upgrade
        # policy's reaction to in-window accesses already influenced).
        from repro.core.stats import FileStatistics
        from repro.dfs.namespace import INodeFile

        file = INodeFile(inode_id=1, name="f", creation_time=0.0, size=GB)
        stats = FileStatistics(file, k=4)
        stats.record_access(10.0, tier_level=2)  # on HDD at t=10
        stats.record_access(50.0, tier_level=0)  # upgraded by t=50
        assert stats.tier_level_at(5.0) is None  # no access yet
        assert stats.tier_level_at(10.0) == 2
        assert stats.tier_level_at(49.9) == 2  # upgrade not visible yet
        assert stats.tier_level_at(50.0) == 0

    def test_tier_feature_is_fed_end_to_end(self):
        # Regression: with features.include_tier the tier column must
        # carry real values (not all-NaN) in the generated training data.
        import numpy as np

        from repro.engine.runner import SystemConfig, WorkloadRunner
        from repro.workload.profiles import PROFILES, scaled_profile
        from repro.workload.synthesis import synthesize_trace

        trace = synthesize_trace(scaled_profile(PROFILES["FB"], 0.1), seed=42)
        config = SystemConfig(
            label="tier-feature",
            placement="octopus",
            downgrade="xgb",
            upgrade="xgb",
            conf={"features.include_tier": True},
        )
        runner = WorkloadRunner(trace, config)
        runner.run()
        trainer = runner.manager.trainer
        for model in (trainer.upgrade_model, trainer.downgrade_model):
            assert model.spec.include_tier
            idx = feature_names(model.spec).index("tier_level")
            X, _, _ = model.dataset()
            tier_col = X[:, idx]
            finite = tier_col[~np.isnan(tier_col)]
            assert finite.size > 0, "tier feature never fed"
            assert ((finite >= 0.0) & (finite <= 1.0)).all()


class TestMediaProfile:
    def test_profiles_standalone(self):
        profile = MediaProfile(read_bw=100.0, write_bw=50.0, seek_latency=0.5)
        assert profile.read_time(100) == pytest.approx(1.5)
        assert profile.write_time(100) == pytest.approx(2.5)
        assert MEMORY_MEDIA.read_bw > HDD_MEDIA.read_bw
