"""Tests for storage tiers, media profiles, and devices."""

import pytest

from repro.cluster.hardware import (
    DEFAULT_MEDIA_PROFILES,
    MediaProfile,
    StorageTier,
    make_device,
)
from repro.common.errors import InsufficientSpaceError
from repro.common.units import GB, MB


class TestStorageTier:
    def test_ordering_fastest_first(self):
        assert StorageTier.MEMORY < StorageTier.SSD < StorageTier.HDD
        assert min(StorageTier) is StorageTier.MEMORY

    def test_higher_and_lower_tiers(self):
        assert StorageTier.HDD.higher_tiers() == (
            StorageTier.MEMORY,
            StorageTier.SSD,
        )
        assert StorageTier.MEMORY.lower_tiers() == (
            StorageTier.SSD,
            StorageTier.HDD,
        )
        assert StorageTier.MEMORY.higher_tiers() == ()
        assert StorageTier.HDD.lower_tiers() == ()

    def test_extremes(self):
        assert StorageTier.MEMORY.is_highest
        assert StorageTier.HDD.is_lowest
        assert not StorageTier.SSD.is_highest


class TestMediaProfile:
    def test_read_faster_than_write_for_defaults(self):
        for profile in DEFAULT_MEDIA_PROFILES.values():
            assert profile.read_bw >= profile.write_bw

    def test_memory_fastest(self):
        profiles = DEFAULT_MEDIA_PROFILES
        assert (
            profiles[StorageTier.MEMORY].read_bw
            > profiles[StorageTier.SSD].read_bw
            > profiles[StorageTier.HDD].read_bw
        )

    def test_read_time_scales_with_size(self):
        profile = DEFAULT_MEDIA_PROFILES[StorageTier.HDD]
        assert profile.read_time(256 * MB) > profile.read_time(128 * MB)

    def test_times_include_latency(self):
        profile = MediaProfile(100.0, 100.0, seek_latency=1.0)
        assert profile.read_time(0) == pytest.approx(1.0)
        assert profile.write_time(100) == pytest.approx(2.0)


class TestStorageDevice:
    def make(self, capacity=1 * GB):
        return make_device("n0:mem0", StorageTier.MEMORY, capacity)

    def test_allocate_and_release(self):
        device = self.make()
        device.allocate(1, 128 * MB)
        assert device.used == 128 * MB
        assert device.free == 1 * GB - 128 * MB
        assert device.holds(1)
        device.release(1, 128 * MB)
        assert device.used == 0
        assert not device.holds(1)

    def test_over_allocation_raises(self):
        device = self.make(capacity=100 * MB)
        with pytest.raises(InsufficientSpaceError):
            device.allocate(1, 200 * MB)

    def test_duplicate_replica_rejected(self):
        device = self.make()
        device.allocate(1, MB)
        with pytest.raises(ValueError):
            device.allocate(1, MB)

    def test_release_unknown_rejected(self):
        device = self.make()
        with pytest.raises(ValueError):
            device.release(99, MB)

    def test_utilization(self):
        device = self.make(capacity=100 * MB)
        device.allocate(1, 25 * MB)
        assert device.utilization == pytest.approx(0.25)

    def test_has_space_exact_fit(self):
        device = self.make(capacity=64 * MB)
        assert device.has_space(64 * MB)
        device.allocate(1, 64 * MB)
        assert not device.has_space(1)

    def test_replica_count(self):
        device = self.make()
        for i in range(3):
            device.allocate(i, MB)
        assert device.replica_count == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            make_device("x", StorageTier.SSD, 0)
