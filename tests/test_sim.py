"""Tests for the discrete-event simulation kernel."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim import ManualClock, PeriodicTimer, Simulator
from repro.sim.simulator import _COMPACT_MIN_TOMBSTONES


class TestManualClock:
    def test_advance(self):
        clock = ManualClock()
        clock.advance(5.0)
        assert clock.now() == 5.0

    def test_set_forward_only(self):
        clock = ManualClock(10.0)
        clock.set(12.0)
        assert clock.now() == 12.0
        with pytest.raises(ValueError):
            clock.set(1.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(5.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_fifo(self):
        sim = Simulator()
        log = []
        for name in "xyz":
            sim.at(3.0, lambda n=name: log.append(n))
        sim.run()
        assert log == ["x", "y", "z"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.at(7.5, lambda: None)
        sim.run()
        assert sim.now() == 7.5

    def test_after_is_relative(self):
        sim = Simulator(start=100.0)
        seen = []
        sim.after(3.0, lambda: seen.append(sim.now()))
        sim.run()
        assert seen == [103.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start=10.0)
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now() == 5.0
        sim.run()
        assert log == [1, 10]

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        event = sim.at(1.0, lambda: log.append("no"))
        event.cancel()
        sim.at(2.0, lambda: log.append("yes"))
        sim.run()
        assert log == ["yes"]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def chain():
            log.append(sim.now())
            if sim.now() < 3:
                sim.after(1.0, chain)

        sim.after(1.0, chain)
        sim.run()
        assert log == [1.0, 2.0, 3.0]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.after(0.0, forever)

        sim.after(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_max_events_counts_executed_callbacks_only(self):
        # Regression: cancelled events — skipped by run()'s loop or popped
        # inside step() — must not consume the max_events budget.
        sim = Simulator()
        ran = []
        for i in range(4):
            sim.at(float(i), lambda i=i: ran.append(i))
        cancelled = [sim.at(float(i) + 0.5, lambda: ran.append(-1)) for i in range(4)]
        for event in cancelled:
            event.cancel()
        executed = sim.run(max_events=4)  # exactly as many as real callbacks
        assert executed == 4
        assert ran == [0, 1, 2, 3]

    def test_max_events_budget_unaffected_by_mid_run_cancellation(self):
        sim = Simulator()
        ran = []
        later = sim.at(2.0, lambda: ran.append("later"))
        # The first callback cancels a pending event; the tombstone must
        # not count against the remaining budget.
        sim.at(1.0, lambda: (ran.append("first"), later.cancel()))
        sim.at(3.0, lambda: ran.append("last"))
        executed = sim.run(max_events=2)
        assert executed == 2
        assert ran == ["first", "last"]

    def test_run_returns_executed_count(self):
        sim = Simulator()
        for i in range(3):
            sim.at(float(i), lambda: None)
        assert sim.run() == 3
        assert sim.run() == 0  # empty queue

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestHeapCompaction:
    """Tombstone accounting and amortized compaction must be invisible:
    execution order, clocks, and counters behave exactly as if every
    cancelled event were lazily skipped."""

    @staticmethod
    def _random_schedule(seed: int, num_events: int, cancel_fraction: float):
        """Schedule events at random times, cancel a random subset.

        Returns (sim, expected execution log sorted by (time, seq)).
        """
        rng = random.Random(seed)
        sim = Simulator()
        log = []
        events = []
        for i in range(num_events):
            t = rng.uniform(0.0, 1000.0)
            events.append((t, i, sim.at(t, lambda i=i: log.append(i))))
        cancelled = set()
        for t, i, event in events:
            if rng.random() < cancel_fraction:
                event.cancel()
                cancelled.add(i)
        expected = [
            i for t, i, _ in sorted(events, key=lambda e: (e[0], e[1]))
            if i not in cancelled
        ]
        return sim, log, expected, cancelled

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_events=st.integers(min_value=1, max_value=400),
        cancel_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_execution_order_preserved(self, seed, num_events, cancel_fraction):
        sim, log, expected, cancelled = self._random_schedule(
            seed, num_events, cancel_fraction
        )
        executed = sim.run()
        assert log == expected
        assert executed == len(expected)
        assert sim.events_processed == len(expected)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_determinism_under_cancellation(self, seed):
        def run_once():
            sim, log, _, _ = self._random_schedule(seed, 300, 0.6)
            sim.run()
            return log

        assert run_once() == run_once()

    def test_pending_excludes_tombstones(self):
        sim = Simulator()
        events = [sim.at(float(i), lambda: None) for i in range(10)]
        assert sim.pending == 10
        for event in events[:4]:
            event.cancel()
        assert sim.pending == 6
        assert sim.heap_size == 10  # tombstones still physically queued
        assert sim.events_cancelled == 4
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 6

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.at(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.events_cancelled == 1
        assert sim.pending == 0

    def test_cancel_after_execution_does_not_skew_counts(self):
        sim = Simulator()
        event = sim.at(1.0, lambda: None)
        sim.run()
        event.cancel()  # too late; event already left the heap
        assert sim.pending == 0
        assert sim.events_cancelled == 0

    def test_compaction_triggers_and_preserves_results(self):
        # Far more tombstones than live events forces a compaction pass;
        # the surviving schedule must be untouched.
        sim = Simulator()
        log = []
        keep = [sim.at(float(i), lambda i=i: log.append(i)) for i in range(5)]
        doomed = [
            sim.at(1000.0 + i, lambda: log.append(-1))
            for i in range(3 * _COMPACT_MIN_TOMBSTONES)
        ]
        for event in doomed:
            event.cancel()
        assert sim.heap_compactions >= 1
        assert sim.heap_size < len(keep) + len(doomed)
        assert sim.pending == len(keep)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_interleaved_cancel_and_schedule_from_callbacks(self, seed):
        """Callbacks that cancel other events and schedule new ones mid-run
        keep counters consistent whether or not compaction fires."""
        rng = random.Random(seed)
        sim = Simulator()
        log = []
        pending_events = []

        def act(i):
            log.append(i)
            if pending_events and rng.random() < 0.7:
                pending_events.pop(rng.randrange(len(pending_events))).cancel()
            if rng.random() < 0.5:
                j = len(log) * 1000 + i
                pending_events.append(
                    sim.after(rng.uniform(0.1, 10.0), lambda j=j: log.append(j))
                )

        for i in range(150):
            pending_events.append(
                sim.at(rng.uniform(0.0, 100.0), lambda i=i: act(i))
            )
        executed = sim.run(max_events=10_000)
        assert sim.pending == 0
        assert sim.events_processed == executed == len(log)


class TestPeriodicTimer:
    def test_fires_every_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now()))
        sim.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_stop_prevents_future_fires(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 5.0, lambda: ticks.append(sim.now()))
        sim.run(until=12.0)
        timer.stop()
        sim.run(until=100.0)
        assert ticks == [5.0, 10.0]
        assert timer.stopped

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now()), start_delay=1.0)
        sim.run(until=22.0)
        assert ticks == [1.0, 11.0, 21.0]

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)

    def test_stop_from_within_callback(self):
        sim = Simulator()
        ticks = []
        holder = {}

        def tick():
            ticks.append(sim.now())
            if len(ticks) == 2:
                holder["t"].stop()

        holder["t"] = PeriodicTimer(sim, 1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
