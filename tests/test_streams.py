"""Tests for the lazy workload-stream protocol and the streaming runner."""

import json

import pytest

from repro.engine.runner import SystemConfig, WorkloadRunner, run_workload
from repro.workload.jobs import (
    FileCreation,
    FileDeletion,
    TraceJob,
    event_sort_key,
    event_time,
)
from repro.workload.profiles import FB_PROFILE, scaled_profile
from repro.workload.scenarios import build_scenario
from repro.workload.streams import (
    StreamOrderError,
    SynthesizedStream,
    TraceStream,
    WorkloadStream,
    clip,
    merge_events,
    merge_timed_sources,
    number_jobs,
    ordered,
)
from repro.workload.synthesis import synthesize_trace


def small_fb_trace(seed=42, scale=0.1):
    return synthesize_trace(scaled_profile(FB_PROFILE, scale), seed=seed)


def job(t, job_id=-1, paths=("/data/x",), size=1024):
    return TraceJob(
        job_id=job_id, submit_time=t, input_paths=list(paths), input_size=size
    )


class TestEventModel:
    def test_event_time(self):
        assert event_time(FileCreation("/a", 1, 3.0)) == 3.0
        assert event_time(FileDeletion("/a", 9.0)) == 9.0
        assert event_time(job(5.0)) == 5.0

    def test_tie_order_create_job_delete(self):
        events = [FileDeletion("/a", 1.0), job(1.0), FileCreation("/a", 1, 1.0)]
        ranked = sorted(events, key=event_sort_key)
        assert isinstance(ranked[0], FileCreation)
        assert isinstance(ranked[1], TraceJob)
        assert isinstance(ranked[2], FileDeletion)


class TestTraceStream:
    def test_events_match_trace(self):
        trace = small_fb_trace()
        stream = TraceStream(trace)
        assert list(stream.events()) == list(trace.events())
        assert stream.name == trace.name
        assert stream.duration == trace.duration

    def test_materialize_round_trip(self):
        trace = small_fb_trace()
        clone = TraceStream(trace).materialize()
        assert clone.creations == sorted(trace.creations, key=lambda c: c.time)
        assert [j.job_id for j in clone.jobs] == [j.job_id for j in trace.jobs]

    def test_stats_single_pass(self):
        trace = small_fb_trace()
        stats = TraceStream(trace).stats()
        assert stats.jobs == len(trace.jobs)
        assert stats.creations == len(trace.creations)
        assert stats.jobs_per_bin == trace.jobs_per_bin()

    def test_stats_bounded(self):
        trace = small_fb_trace()
        stats = TraceStream(trace).stats(max_events=10)
        assert stats.events == 10


class TestSynthesizedStream:
    def test_matches_synthesizer(self):
        stream = SynthesizedStream(FB_PROFILE, seed=3, scale=0.05)
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=3)
        assert list(stream.events()) == list(trace.events())

    def test_materialize_is_cached(self):
        stream = SynthesizedStream(FB_PROFILE, seed=3, scale=0.05)
        assert stream.materialize() is stream.materialize()

    def test_materialize_with_deletions_rejected(self):
        stream = build_scenario("pipeline", seed=1)
        with pytest.raises(ValueError, match="deletions"):
            stream.materialize()


class TestStreamUtilities:
    def test_ordered_rejects_decreasing_times(self):
        events = [job(5.0), job(4.0)]
        with pytest.raises(StreamOrderError):
            list(ordered(events))

    def test_number_jobs_assigns_sequential_ids(self):
        events = [job(1.0), FileCreation("/a", 1, 2.0), job(3.0)]
        numbered = list(number_jobs(events))
        assert [e.job_id for e in numbered if isinstance(e, TraceJob)] == [0, 1]

    def test_number_jobs_keeps_explicit_ids(self):
        numbered = list(number_jobs([job(1.0, job_id=7)]))
        assert numbered[0].job_id == 7

    def test_merge_events_time_ordered(self):
        a = [job(1.0), job(4.0)]
        b = [FileCreation("/b", 1, 2.0), FileCreation("/c", 1, 4.0)]
        merged = list(merge_events(a, b))
        assert [event_time(e) for e in merged] == [1.0, 2.0, 4.0, 4.0]
        # Tie at t=4.0: the creation outranks the job.
        assert isinstance(merged[2], FileCreation)

    def test_merge_timed_sources_admits_lazily(self):
        pulled = []

        def source(start, times):
            def gen():
                for t in times:
                    pulled.append((start, t))
                    yield job(t)

            return start, gen()

        sources = [source(0.0, [0.5, 6.0]), source(5.0, [5.5])]
        merged = merge_timed_sources(iter(sources))
        first = next(merged)
        assert event_time(first) == 0.5
        # The t=5 source must not have been touched yet.
        assert all(start == 0.0 for start, _ in pulled)
        assert [event_time(e) for e in merged] == [5.5, 6.0]

    def test_merge_timed_sources_rejects_early_events(self):
        with pytest.raises(StreamOrderError):
            list(merge_timed_sources(iter([(10.0, iter([job(1.0)]))])))

    def test_clip(self):
        events = [job(1.0), job(2.0), job(3.0)]
        assert [event_time(e) for e in clip(events, 2.0)] == [1.0, 2.0]


def fingerprint(result):
    metrics = result.metrics
    return json.dumps(
        {
            "jobs": result.jobs_finished,
            "hit": metrics.hit_ratio(),
            "byte_hit": metrics.byte_hit_ratio(),
            "task_seconds": metrics.total_task_seconds(),
            "elapsed": result.elapsed,
            "up": result.bytes_upgraded_by_tier,
            "down": result.bytes_downgraded_by_tier,
            "transfers": result.transfers_committed,
            "io": result.io_stats,
            "bins": {
                name: (b.jobs_completed, b.mean_completion_time)
                for name, b in metrics.bins.items()
            },
        },
        sort_keys=True,
    )


class TestStreamingReplayEquivalence:
    """Streamed replay must be bit-identical to materialized replay."""

    @pytest.mark.parametrize("io_model", ["snapshot", "fairshare"])
    @pytest.mark.parametrize("seed", [42, 7])
    def test_fb_replay_bit_identical(self, io_model, seed):
        trace = small_fb_trace(seed=seed)

        def config():
            return SystemConfig(
                label="LRU-OSA",
                placement="octopus",
                downgrade="lru",
                upgrade="osa",
                workers=5,
                io_model=io_model,
            )

        materialized = run_workload(trace, config())
        streamed = run_workload(TraceStream(trace), config())
        assert fingerprint(materialized) == fingerprint(streamed)
        assert streamed.jobs_submitted == len(trace.jobs)


class SpyStream(WorkloadStream):
    """Counts how far the runner pulls ahead of applied events."""

    def __init__(self, inner, runner_box):
        self.inner = inner
        self.name = inner.name
        self.duration = inner.duration
        self.runner_box = runner_box
        self.pulled = 0
        self.max_lead = 0

    def events(self):
        for event in self.inner.events():
            self.pulled += 1
            runner = self.runner_box.get("runner")
            if runner is not None:
                applied = runner.sim.events_processed
                self.max_lead = max(self.max_lead, self.pulled - applied)
            yield event


class TestStreamingRunner:
    def test_long_stream_is_never_materialized(self):
        """A 10x-length stream stays O(1) ahead of the simulation."""
        inner = build_scenario(
            "oscillating", seed=2, scale=10, jobs_per_minute=0.5, pool_files=60
        )
        box = {}
        spy = SpyStream(inner, box)
        runner = WorkloadRunner(
            spy,
            SystemConfig(label="osc", placement="octopus", workers=4),
        )
        box["runner"] = runner
        result = runner.run()
        assert result.jobs_finished == result.jobs_submitted > 500
        # The pump holds exactly one upcoming workload event: had the
        # stream been materialized up front, every event would have been
        # pulled before the first one was executed (lead == pulled).
        assert spy.max_lead <= 4

    def test_scenario_config_drive_path(self):
        config = SystemConfig(
            label="mlscan",
            placement="octopus",
            scenario="mlscan",
            scenario_params={"seed": 5, "scale": 0.2},
            workers=4,
        )
        result = WorkloadRunner(None, config).run()
        assert result.jobs_finished == result.jobs_submitted > 0

    def test_missing_scenario_rejected(self):
        with pytest.raises(ValueError):
            WorkloadRunner(None, SystemConfig(label="x"))

    def test_bad_workload_type_rejected(self):
        with pytest.raises(TypeError):
            WorkloadRunner(object(), SystemConfig(label="x"))

    def test_pipeline_deletions_applied(self):
        stream = build_scenario("pipeline", seed=5)
        runner = WorkloadRunner(
            stream,
            SystemConfig(label="pipe", placement="octopus", workers=4),
        )
        result = runner.run()
        assert result.deletions_applied > 0
        # Deleted datasets are gone from the namespace.
        deleted = [e for e in stream.events() if isinstance(e, FileDeletion)]
        assert deleted and not runner.client.exists(deleted[0].path)
