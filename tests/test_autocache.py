"""Tests for the AutoCache mode: cache-copy upgrades, delete downgrades."""

import pytest

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import DowngradeAction, ReplicationManager, configure_policies
from repro.dfs import DFSClient, Master, NodeManager
from repro.dfs.placement import HdfsPlacementPolicy
from repro.engine.runner import SystemConfig
from repro.sim import Simulator


def hdfs_stack(conf=None, workers=4, memory_per_node=1 * GB):
    sim = Simulator()
    topo = build_local_cluster(num_workers=workers, memory_per_node=memory_per_node)
    nm = NodeManager(topo)
    configuration = Configuration(conf or {})
    master = Master(
        topo, HdfsPlacementPolicy(topo, nm, configuration), sim, configuration
    )
    client = DFSClient(master)
    manager = ReplicationManager(master, sim, configuration)
    return sim, master, client, manager


CACHE_CONF = {"manager.cache_mode": True, "downgrade.action": "delete"}


class TestSystemConfig:
    def test_cache_mode_folds_conf_keys(self):
        config = SystemConfig(placement="hdfs", cache_mode=True)
        conf = config.effective_conf()
        assert conf["manager.cache_mode"] is True
        assert conf["downgrade.action"] == "delete"

    def test_explicit_conf_wins(self):
        config = SystemConfig(
            placement="hdfs", cache_mode=True, conf={"downgrade.action": "move"}
        )
        assert config.effective_conf()["downgrade.action"] == "move"

    def test_default_has_no_cache_keys(self):
        conf = SystemConfig().effective_conf()
        assert "manager.cache_mode" not in conf


class TestDowngradeAction:
    def test_policy_reads_configured_action(self):
        sim, master, client, manager = hdfs_stack(CACHE_CONF)
        configure_policies(manager, downgrade="lru")
        file = client.create("/f", 64 * MB)
        action = manager.downgrade_policy.how_to_downgrade(file, StorageTier.MEMORY)
        assert action is DowngradeAction.DELETE

    def test_default_action_is_move(self):
        sim, master, client, manager = hdfs_stack()
        configure_policies(manager, downgrade="lru")
        file = client.create("/f", 64 * MB)
        action = manager.downgrade_policy.how_to_downgrade(file, StorageTier.MEMORY)
        assert action is DowngradeAction.MOVE

    def test_invalid_action_rejected(self):
        sim, master, client, manager = hdfs_stack({"downgrade.action": "teleport"})
        with pytest.raises(ValueError):
            configure_policies(manager, downgrade="lru")


class TestCacheCopyUpgrade:
    def test_copy_upgrade_keeps_source_replica(self):
        sim, master, client, manager = hdfs_stack(CACHE_CONF)
        configure_policies(manager, downgrade="lru", upgrade="osa")
        file = client.create("/f", 64 * MB)
        block = master.blocks.blocks_of(file)[0]
        hdd_before = len(block.replicas_on_tier(StorageTier.HDD))
        assert not block.replicas_on_tier(StorageTier.MEMORY)
        client.open("/f")  # OSA admission schedules a cache copy
        sim.run(until=sim.now() + 120)
        assert len(block.replicas_on_tier(StorageTier.HDD)) == hdd_before
        assert len(block.replicas_on_tier(StorageTier.MEMORY)) == 1

    def test_cached_replica_colocated_when_possible(self):
        sim, master, client, manager = hdfs_stack(CACHE_CONF, workers=6)
        configure_policies(manager, downgrade="lru", upgrade="osa")
        file = client.create("/f", 64 * MB)
        block = master.blocks.blocks_of(file)[0]
        holders = set(block.nodes())
        client.open("/f")
        sim.run(until=sim.now() + 120)
        cached = block.replicas_on_tier(StorageTier.MEMORY)
        assert len(cached) == 1
        assert cached[0].node_id in holders

    def test_move_mode_removes_source(self):
        sim, master, client, manager = hdfs_stack()  # tiering semantics
        configure_policies(manager, downgrade="lru", upgrade="osa")
        file = client.create("/f", 64 * MB)
        block = master.blocks.blocks_of(file)[0]
        hdd_before = len(block.replicas_on_tier(StorageTier.HDD))
        client.open("/f")
        sim.run(until=sim.now() + 120)
        assert len(block.replicas_on_tier(StorageTier.MEMORY)) == 1
        assert len(block.replicas_on_tier(StorageTier.HDD)) == hdd_before - 1


class TestCacheEviction:
    def test_delete_downgrade_frees_memory_without_moving(self):
        sim, master, client, manager = hdfs_stack(CACHE_CONF)
        configure_policies(manager, downgrade="lru", upgrade="osa")
        # Fill the cache by accessing files until memory is pressured
        # (4 workers x 1GB memory; 20 x 256MB of cached data overshoots
        # the 90% downgrade trigger).
        for i in range(20):
            client.create(f"/f{i}", 256 * MB)
            client.open(f"/f{i}")
            sim.run(until=sim.now() + 60)
        sim.run(until=sim.now() + 600)
        monitor = manager.monitor
        assert monitor.bytes_deleted[StorageTier.MEMORY] > 0
        # Nothing was *moved* down: cache evictions are deletions.
        assert monitor.bytes_downgraded[StorageTier.MEMORY] == 0
        # Persistent replication is untouched: every block still has 3
        # HDD replicas.
        for file in master.files():
            for block in master.blocks.blocks_of(file):
                assert len(block.replicas_on_tier(StorageTier.HDD)) == 3


class TestHealthScanCacheExemption:
    def test_cached_replica_not_trimmed(self):
        sim, master, client, manager = hdfs_stack(
            {**CACHE_CONF, "monitor.health_checks_enabled": True}
        )
        configure_policies(manager, downgrade="lru", upgrade="osa")
        file = client.create("/f", 64 * MB)
        client.open("/f")
        sim.run(until=sim.now() + 120)
        block = master.blocks.blocks_of(file)[0]
        assert len(block.replicas_on_tier(StorageTier.MEMORY)) == 1
        manager.monitor.health_scan()
        sim.run(until=sim.now() + 120)
        # 3 HDD + 1 cached memory replica: not over-replicated in cache mode.
        assert len(block.replicas_on_tier(StorageTier.MEMORY)) == 1
        assert len(block.replicas_on_tier(StorageTier.HDD)) == 3

    def test_under_replication_repaired_on_persistent_tiers(self):
        sim, master, client, manager = hdfs_stack(
            {**CACHE_CONF, "monitor.health_checks_enabled": True}
        )
        configure_policies(manager, downgrade="lru", upgrade="osa")
        file = client.create("/f", 64 * MB)
        client.open("/f")
        sim.run(until=sim.now() + 120)
        block = master.blocks.blocks_of(file)[0]
        # Drop one persistent replica; the cached one must not count.
        master.delete_replica(block.replicas_on_tier(StorageTier.HDD)[0])
        manager.monitor.health_scan()
        sim.run(until=sim.now() + 300)
        persistent = [
            r
            for r in block.replica_list()
            if r.tier is not StorageTier.MEMORY
        ]
        assert len(persistent) == 3
        # The cached copy survived the repair round untouched.
        assert len(block.replicas_on_tier(StorageTier.MEMORY)) == 1


class TestAutoCacheExperiment:
    def test_small_scale_run(self):
        from repro.experiments.autocache import run_autocache, render_autocache
        from repro.experiments.common import ExperimentScale

        result = run_autocache("FB", scale=ExperimentScale(workload_scale=0.05))
        assert set(result.runs) == {
            "HDFS",
            "HDFS+Cache",
            "AutoCache(LRU-OSA)",
            "AutoCache(XGB)",
        }
        table = render_autocache(result)
        assert "AutoCache" in table
        for label in result.cache_labels:
            assert result.runs[label].jobs_finished > 0
