"""End-to-end smoke tests for degenerate and deep tier hierarchies.

The paper's experiments all run on the 3-tier testbed; these tests run
the same workload pipeline over a 2-tier (mem-hdd) and a 4-tier (nvme4)
hierarchy with deliberately tight capacities, asserting that the
policy machinery — proactive downgrades, access-triggered upgrades,
tier-ordered placement — flows through *every* adjacent tier pair and
that the hit-ratio accounting stays sane.
"""

import dataclasses

import pytest

from repro.cluster.hardware import (
    TierHierarchy,
    _hdd_spec,
    _memory_spec,
    _nvme_spec,
    _ssd_spec,
    get_hierarchy,
    hierarchy_names,
    register_hierarchy,
)
from repro.common.units import GB
from repro.engine.runner import SystemConfig, run_workload
from repro.workload.profiles import PROFILES, scaled_profile
from repro.workload.synthesis import synthesize_trace


def _tight(spec, capacity, devices=1):
    return dataclasses.replace(
        spec, default_capacity=capacity, default_devices=devices
    )


def _ensure_smoke_presets():
    """Register tightly-provisioned variants so every tier saturates."""
    if "smoke-mem-hdd" not in hierarchy_names():
        register_hierarchy(
            "smoke-mem-hdd",
            lambda: TierHierarchy(
                "smoke-mem-hdd",
                [_tight(_memory_spec(), 1 * GB), _tight(_hdd_spec(), 400 * GB, 3)],
            ),
        )
    if "smoke-nvme4" not in hierarchy_names():
        register_hierarchy(
            "smoke-nvme4",
            lambda: TierHierarchy(
                "smoke-nvme4",
                [
                    _tight(_memory_spec(), 1 * GB),
                    _tight(_nvme_spec(), 2 * GB),
                    _tight(_ssd_spec(), 3 * GB),
                    _tight(_hdd_spec(), 400 * GB, 3),
                ],
            ),
        )


@pytest.fixture(scope="module")
def fb_trace():
    return synthesize_trace(scaled_profile(PROFILES["FB"], 0.3), seed=42)


def _run(trace, tiers):
    _ensure_smoke_presets()
    config = SystemConfig(
        label=tiers,
        placement="octopus",
        downgrade="lru",
        upgrade="osa",
        tiers=tiers,
        memory_per_node=1 * GB,
    )
    return run_workload(trace, config)


def _assert_flow_through_all_pairs(result, tiers):
    hierarchy = get_hierarchy(tiers)
    # Downgrades: every tier except the lowest sheds bytes downward, so
    # each adjacent (higher, lower) boundary is crossed at least once.
    for higher, _lower in hierarchy.adjacent_pairs():
        assert result.bytes_downgraded_by_tier[higher.name] > 0, (
            f"no downgrades left tier {higher.name}"
        )
    assert result.bytes_downgraded_by_tier[hierarchy.lowest.name] == 0
    # Upgrades: accessed files get pulled back into the highest tier.
    assert result.bytes_upgraded_by_tier[hierarchy.highest.name] > 0
    # Hit-ratio accounting stays sane under pressure.
    assert 0.0 < result.metrics.hit_ratio() < 1.0
    assert 0.0 < result.metrics.byte_hit_ratio() < 1.0
    assert 0.0 <= result.metrics.location_hit_ratio() <= 1.0


class TestTwoTierEndToEnd:
    def test_mem_hdd_flow(self, fb_trace):
        result = _run(fb_trace, "smoke-mem-hdd")
        assert result.jobs_finished == len(fb_trace.jobs)
        _assert_flow_through_all_pairs(result, "smoke-mem-hdd")

    def test_mem_hdd_movement_is_memory_bound(self, fb_trace):
        result = _run(fb_trace, "smoke-mem-hdd")
        # Only one boundary exists: everything that moved crossed it.
        assert set(result.bytes_downgraded_by_tier) == {"MEMORY", "HDD"}
        assert result.bytes_upgraded_by_tier["HDD"] == 0


class TestFourTierEndToEnd:
    def test_nvme4_flow(self, fb_trace):
        result = _run(fb_trace, "smoke-nvme4")
        assert result.jobs_finished == len(fb_trace.jobs)
        _assert_flow_through_all_pairs(result, "smoke-nvme4")

    def test_nvme4_downgrade_volume_decreases_down_the_stack(self, fb_trace):
        # The cascade attenuates: each lower tier only receives what the
        # one above shed, so the downgraded-out volume shrinks with depth.
        result = _run(fb_trace, "smoke-nvme4")
        volumes = [
            result.bytes_downgraded_by_tier[t.name]
            for t in get_hierarchy("smoke-nvme4")
        ]
        assert volumes == sorted(volumes, reverse=True)


class TestDeterminism:
    def test_same_seed_same_metrics(self, fb_trace):
        a = _run(fb_trace, "smoke-nvme4")
        b = _run(fb_trace, "smoke-nvme4")
        assert a.metrics.hit_ratio() == b.metrics.hit_ratio()
        assert a.bytes_downgraded_by_tier == b.bytes_downgraded_by_tier
        assert a.bytes_upgraded_by_tier == b.bytes_upgraded_by_tier
