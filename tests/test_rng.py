"""Tests for deterministic RNG distribution helpers."""

import numpy as np
import pytest

from repro.common.rng import (
    bounded_pareto,
    make_rng,
    poisson_arrivals,
    sample_zipf_ranks,
    weighted_choice,
    zipf_probabilities,
)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        probs = zipf_probabilities(100, 1.0)
        assert probs.sum() == pytest.approx(1.0)

    def test_skew_zero_is_uniform(self):
        probs = zipf_probabilities(10, 0.0)
        assert np.allclose(probs, 0.1)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(50, 1.2)
        assert np.all(np.diff(probs) <= 0)

    def test_higher_skew_concentrates_head(self):
        low = zipf_probabilities(100, 0.5)
        high = zipf_probabilities(100, 1.5)
        assert high[0] > low[0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)

    def test_sampling_determinism(self):
        a = sample_zipf_ranks(make_rng(5), 100, 1.0, 50)
        b = sample_zipf_ranks(make_rng(5), 100, 1.0, 50)
        assert np.array_equal(a, b)


class TestBoundedPareto:
    def test_within_bounds(self):
        rng = make_rng(1)
        samples = bounded_pareto(rng, 10.0, 1000.0, 1.1, 500)
        assert samples.min() >= 10.0
        assert samples.max() <= 1000.0

    def test_heavy_tail_skews_low(self):
        rng = make_rng(2)
        samples = bounded_pareto(rng, 1.0, 10000.0, 1.5, 2000)
        assert np.median(samples) < np.mean(samples)

    def test_invalid_args(self):
        rng = make_rng(0)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 10.0, 5.0, 1.0, 10)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 1.0, 10.0, 0.0, 10)


class TestPoissonArrivals:
    def test_sorted_and_bounded(self):
        rng = make_rng(3)
        arrivals = poisson_arrivals(rng, 1.0, 100.0)
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 100.0 for t in arrivals)

    def test_rate_roughly_matches(self):
        rng = make_rng(4)
        arrivals = poisson_arrivals(rng, 5.0, 1000.0)
        assert 4000 < len(arrivals) < 6000

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(make_rng(0), 0.0, 10.0)


class TestWeightedChoice:
    def test_deterministic_with_seed(self):
        items = ["a", "b", "c"]
        assert weighted_choice(make_rng(9), items, [1, 1, 1]) == weighted_choice(
            make_rng(9), items, [1, 1, 1]
        )

    def test_zero_weight_never_chosen(self):
        rng = make_rng(10)
        picks = {weighted_choice(rng, ["x", "y"], [0.0, 1.0]) for _ in range(50)}
        assert picks == {"y"}

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a"], [1, 2])

    def test_non_positive_total(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a", "b"], [0, 0])
