"""Tests for the contention-aware I/O model."""

import pytest

from repro.cluster import StorageTier, build_local_cluster
from repro.common.units import MB
from repro.engine.iomodel import IoModel, WriteLeg


@pytest.fixture
def iomodel():
    return IoModel(build_local_cluster(num_workers=3))


def mem_device(iomodel, node_index=0):
    node = iomodel.topology.nodes[node_index]
    return node.devices(StorageTier.MEMORY)[0]


def hdd_device(iomodel, node_index=0):
    node = iomodel.topology.nodes[node_index]
    return node.devices(StorageTier.HDD)[0]


class TestReads:
    def test_memory_faster_than_hdd(self, iomodel):
        node = iomodel.topology.nodes[0].node_id
        mem_t, rel1 = iomodel.start_read(
            128 * MB, mem_device(iomodel).device_id, False, node, node
        )
        hdd_t, rel2 = iomodel.start_read(
            128 * MB, hdd_device(iomodel).device_id, False, node, node
        )
        assert mem_t < hdd_t
        rel1(), rel2()

    def test_contention_halves_bandwidth(self, iomodel):
        node = iomodel.topology.nodes[0].node_id
        device = hdd_device(iomodel).device_id
        t1, rel1 = iomodel.start_read(128 * MB, device, False, node, node)
        t2, rel2 = iomodel.start_read(128 * MB, device, False, node, node)
        assert t2 > 1.8 * t1  # second stream sees half the bandwidth
        rel1()
        t3, rel3 = iomodel.start_read(128 * MB, device, False, node, node)
        assert t3 == pytest.approx(t2, rel=0.01)
        rel2(), rel3()

    def test_remote_memory_read_capped_by_network(self, iomodel):
        nodes = [n.node_id for n in iomodel.topology.nodes]
        local_t, rel1 = iomodel.start_read(
            128 * MB, mem_device(iomodel).device_id, False, nodes[0], nodes[0]
        )
        remote_t, rel2 = iomodel.start_read(
            128 * MB, mem_device(iomodel).device_id, True, nodes[1], nodes[0]
        )
        # 10GbE (1250MB/s) still caps a 3GB/s memory stream.
        assert remote_t > 2 * local_t
        rel1(), rel2()

    def test_release_restores_counters(self, iomodel):
        node = iomodel.topology.nodes[0].node_id
        device = hdd_device(iomodel).device_id
        _, release = iomodel.start_read(MB, device, False, node, node)
        assert iomodel.active_streams(device) == 1
        release()
        assert iomodel.active_streams(device) == 0

    def test_double_release_rejected(self, iomodel):
        node = iomodel.topology.nodes[0].node_id
        _, release = iomodel.start_read(
            MB, hdd_device(iomodel).device_id, False, node, node
        )
        release()
        with pytest.raises(RuntimeError):
            release()


class TestWrites:
    def legs(self, iomodel, tiers, writer_index=0):
        writer = iomodel.topology.nodes[writer_index].node_id
        legs = []
        for i, tier in enumerate(tiers):
            node = iomodel.topology.nodes[i]
            legs.append(
                WriteLeg(
                    device=node.devices(tier)[0],
                    remote=node.node_id != writer,
                    node_id=node.node_id,
                )
            )
        return writer, legs

    def test_pipeline_bottlenecked_by_slowest_leg(self, iomodel):
        writer, fast_legs = self.legs(iomodel, [StorageTier.MEMORY, StorageTier.SSD])
        t_fast, rel1 = iomodel.start_write(128 * MB, fast_legs, writer)
        rel1()
        writer, slow_legs = self.legs(
            iomodel, [StorageTier.MEMORY, StorageTier.SSD, StorageTier.HDD]
        )
        t_slow, rel2 = iomodel.start_write(128 * MB, slow_legs, writer)
        rel2()
        assert t_slow > t_fast

    def test_empty_legs_rejected(self, iomodel):
        with pytest.raises(ValueError):
            iomodel.start_write(MB, [], None)

    def test_network_counted_once_per_node(self, iomodel):
        writer, legs = self.legs(iomodel, [StorageTier.HDD, StorageTier.HDD])
        _, release = iomodel.start_write(MB, legs, writer)
        # Writer + one remote leg hold network streams.
        assert iomodel.active_net_streams(writer) == 1
        release()
        assert iomodel.active_net_streams(writer) == 0

    def test_concurrent_writers_slow_each_other(self, iomodel):
        writer, legs = self.legs(iomodel, [StorageTier.HDD])
        t1, rel1 = iomodel.start_write(128 * MB, legs, writer)
        t2, rel2 = iomodel.start_write(128 * MB, legs, writer)
        assert t2 > 1.8 * t1
        rel1(), rel2()
