"""The benchmark regression gate must notice rows, not just leaves.

Regression test for the silent-row-loss gap: a benchmark row whose
leaves are all informational (``rss_mb``, ``events_per_second``, ...)
used to vanish from a report without tripping the gate, because every
per-leaf presence mismatch was classified "info".  The row-presence
check compares the *row sets* of the two reports in both directions.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def gate():
    path = REPO_ROOT / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_regression"] = module
    spec.loader.exec_module(module)
    return module


def _row(workload, **extra):
    row = {
        "workload": workload,
        "io_model": "snapshot",
        "hit_ratio": 0.5,
        "rss_mb": 100.0,
    }
    row.update(extra)
    return row


def _report(*rows):
    return {"runs": list(rows)}


class TestRowPresence:
    def test_identical_reports_pass(self, gate):
        report = _report(_row("FB"), _row("CC"))
        diffs = list(gate.compare_report(report, _report(*report["runs"]), 3.0))
        assert all(d.ok for d in diffs)

    def test_current_missing_a_baseline_row_fails(self, gate):
        baseline = _report(_row("FB"), _row("CC"))
        current = _report(_row("FB"))
        bad = [d for d in gate.compare_report(baseline, current, 3.0) if not d.ok]
        assert any(d.kind == "row-presence" and "CC" in d.key for d in bad)

    def test_baseline_missing_a_current_row_fails(self, gate):
        baseline = _report(_row("FB"))
        current = _report(_row("FB"), _row("CC"))
        bad = [d for d in gate.compare_report(baseline, current, 3.0) if not d.ok]
        assert any(d.kind == "row-presence" and "CC" in d.key for d in bad)

    def test_informational_only_row_loss_still_fails(self, gate):
        # The original gap: every leaf of the lost row is informational,
        # so no per-leaf comparison would have failed.
        info_row = {
            "workload": "CC",
            "io_model": "snapshot",
            "rss_mb": 64.0,
            "events_per_second": 1e6,
        }
        baseline = _report(_row("FB"), info_row)
        current = _report(_row("FB"))
        bad = [d for d in gate.compare_report(baseline, current, 3.0) if not d.ok]
        assert any(d.kind == "row-presence" for d in bad)

    def test_leaf_drift_is_still_exact_gated(self, gate):
        baseline = _report(_row("FB"))
        current = _report(_row("FB", hit_ratio=0.6))
        bad = [d for d in gate.compare_report(baseline, current, 3.0) if not d.ok]
        assert any(d.kind == "exact" for d in bad)
        assert not any(d.kind == "row-presence" for d in bad)

    def test_row_groups_collects_nested_prefixes(self, gate):
        flat = {"suites[a].runs[b].hit_ratio": 1}
        assert gate.row_groups(flat) == {"suites[a]", "suites[a].runs[b]"}


class TestGateEndToEnd:
    def test_main_exit_codes(self, gate, tmp_path):
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        baseline = _report(_row("FB"), _row("CC"))
        (baseline_dir / "BENCH_x.json").write_text(json.dumps(baseline))

        clean = tmp_path / "BENCH_x.json"
        clean.write_text(json.dumps(baseline))
        assert (
            gate.main([str(clean), "--baseline-dir", str(baseline_dir)]) == 0
        )

        clean.write_text(json.dumps(_report(_row("FB"))))
        assert (
            gate.main([str(clean), "--baseline-dir", str(baseline_dir)]) == 1
        )
