"""Stream-leak invariant: every end-to-end run drains the I/O model.

After a run finishes, every device stream count, NIC stream count,
shared-resource stream count, and active flow must be exactly zero —
a leak means some operation acquired bandwidth and never released it
(snapshot) or a flow never completed (fairshare).
"""

from __future__ import annotations

import pytest

from repro.common.units import GB
from repro.engine.dfsio import DfsioRunner
from repro.engine.runner import SystemConfig, WorkloadRunner
from repro.workload.dfsio import DfsioSpec
from repro.workload.profiles import PROFILES, scaled_profile
from repro.workload.synthesis import synthesize_trace

IO_MODELS = ("snapshot", "fairshare")

#: (tiers preset, memory_per_node) — the 2-, 3-, 4-, and 5-tier runs the
#: invariant must hold for.
TIER_RUNS = (
    ("mem-hdd", 1 * GB),
    ("default3", 4 * GB),
    ("nvme4", 2 * GB),
    ("remote5", 2 * GB),
)


@pytest.fixture(scope="module")
def fb_trace():
    return synthesize_trace(scaled_profile(PROFILES["FB"], 0.15), seed=42)


def assert_fully_drained(runner: WorkloadRunner) -> None:
    """Drain leftover transfers, then require zero everywhere."""
    # Transfers scheduled near the end may still be in flight when
    # WorkloadRunner.run() returns; give them bounded extra time.
    for _ in range(20):
        iomodel = runner.iomodel
        busy = (
            iomodel.engine.active_flows
            if iomodel.engine is not None
            else sum(iomodel._device_streams.values())
        )
        if not busy:
            break
        runner.sim.run(until=runner.sim.now() + 600.0)
    runner.iomodel.assert_drained()
    for device_id in runner.iomodel._devices:
        assert runner.iomodel.active_streams(device_id) == 0
    for node in runner.topology.nodes:
        assert runner.iomodel.active_net_streams(node.node_id) == 0
    for tier in runner.hierarchy:
        if tier.remote:
            assert runner.iomodel.active_endpoint_streams(tier) == 0
    if runner.iomodel.engine is not None:
        assert runner.iomodel.engine.active_flows == 0
        assert (
            runner.iomodel.engine.flows_completed
            == runner.iomodel.engine.flows_started
        )
    # The live-event count must agree: a quiescent system has nothing
    # left to run (tombstoned cancellations in the heap do not count).
    # max_events guards the test against a leaked periodic timer, which
    # would otherwise spin this drain forever.
    runner.sim.run(max_events=10_000)
    assert runner.sim.pending == 0
    if runner.manager is not None:
        runner.manager.monitor.assert_idle()
        assert runner.manager.monitor.pending_transfers == 0


@pytest.mark.parametrize("io_model", IO_MODELS)
@pytest.mark.parametrize("tiers,memory", TIER_RUNS, ids=[t for t, _ in TIER_RUNS])
def test_endtoend_run_drains_all_streams(fb_trace, tiers, memory, io_model):
    config = SystemConfig(
        label=f"{tiers}/{io_model}",
        placement="octopus",
        downgrade="lru",
        upgrade="osa",
        tiers=tiers,
        memory_per_node=memory,
        io_model=io_model,
    )
    runner = WorkloadRunner(fb_trace, config)
    result = runner.run()
    assert result.jobs_finished > 0
    assert_fully_drained(runner)


@pytest.mark.parametrize("io_model", IO_MODELS)
def test_dfsio_run_drains_all_streams(io_model):
    config = SystemConfig(
        label=f"dfsio/{io_model}", placement="octopus", io_model=io_model
    )
    spec = DfsioSpec(total_bytes=8 * GB, file_size=1 * GB)
    dfsio = DfsioRunner(config, spec)
    result = dfsio.run()
    assert result.write_records
    assert result.read_records
    assert_fully_drained(dfsio.runner)


@pytest.mark.parametrize("io_model", IO_MODELS)
def test_baseline_run_without_policies_drains(io_model):
    trace = synthesize_trace(scaled_profile(PROFILES["FB"], 0.1), seed=7)
    config = SystemConfig(
        label=f"hdfs/{io_model}", placement="hdfs", io_model=io_model
    )
    runner = WorkloadRunner(trace, config)
    runner.run()
    assert_fully_drained(runner)
