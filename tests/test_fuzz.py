"""Tests for the adversarial scenario fuzzer (repro.workload.fuzz).

The hypothesis *search* machinery is exercised against stubbed scorers
(monkeypatched into ``SCORERS``) so the suite stays fast and independent
of threshold calibration; the scorers themselves get targeted unit
coverage (one real end-to-end run for churn, the cheap structural paths
for starvation/regret), and the freeze → load → check pipeline plus the
``repro fuzz`` CLI gate are covered end to end.  Real-simulation replay
of the shipped frozen corpus lives in ``test_regression_scenarios.py``.
"""

import json

import pytest

from repro import cli
from repro.workload import fuzz
from repro.workload.compose import canonical_spec, spec_hash
from repro.workload.fuzz import (
    DEFAULT_THRESHOLDS,
    DIMENSION_NAMES,
    FUZZ_SCALE,
    FUZZ_SPACE,
    FuzzSystem,
    Pathology,
    find_pathology,
    freeze_case,
    load_cases,
    score_churn,
    score_starvation,
    unfrozen,
)
from repro.obs.summary import thrash_stats

MLSCAN_SPEC = canonical_spec(
    {
        "op": "scenario",
        "name": "mlscan",
        "seed": 0,
        "scale": FUZZ_SCALE,
        "params": {"shard_mb": 64},
    }
)


def make_pathology(dimension="churn", spec=None, score=1.0):
    spec = canonical_spec(spec or MLSCAN_SPEC)
    return Pathology(
        dimension=dimension,
        metric=fuzz._METRICS[dimension],
        score=score,
        threshold=DEFAULT_THRESHOLDS[dimension],
        spec=spec,
        system=FuzzSystem(),
        details={"note": "synthetic"},
    )


def fake_scorer(score):
    def scorer(spec, system, **kwargs):
        return score, {"fake": True}

    return scorer


# -- search space and system --------------------------------------------------
def test_fuzz_space_covers_registered_scenarios_and_params():
    from repro.workload.scenarios import get_scenario

    for name, knobs in FUZZ_SPACE.items():
        defaults = get_scenario(name).defaults
        assert set(knobs) <= set(defaults), name
        for key, (low, high, _is_float) in knobs.items():
            assert low < high, (name, key)


def test_fuzz_system_round_trips():
    system = FuzzSystem(memory_mb=256, preset="fb")
    assert FuzzSystem.from_dict(system.to_dict()) == system


def test_pathology_case_id_is_dimension_plus_spec_hash():
    pathology = make_pathology()
    assert pathology.case_id == f"churn_{spec_hash(MLSCAN_SPEC)}"


# -- scorers ------------------------------------------------------------------
def test_score_churn_on_pressured_scan_is_positive():
    score, details = score_churn(MLSCAN_SPEC, FuzzSystem())
    assert score > 0.0
    assert details["bytes_read_gb"] > 0
    assert 0.0 <= details["hit_ratio"] <= 1.0


def test_score_churn_trace_attaches_thrash_evidence():
    _, details = score_churn(MLSCAN_SPEC, FuzzSystem(), trace=True)
    assert "thrash" in details
    assert details["thrash"]["migrations"] >= details["thrash"]["files_migrated"]


def test_score_starvation_zero_without_two_tenants():
    assert score_starvation(MLSCAN_SPEC, FuzzSystem()) == (0.0, {"tenants": {}})


def test_score_regret_structure_and_nonnegativity():
    # The oracle maximizes over a candidate set that includes the naive
    # choice, so regret is never negative; the naive selector labels the
    # mix by its first (preset-registered) leaf.
    spec = {"op": "scenario", "name": "static", "seed": 0, "scale": FUZZ_SCALE}
    score, details = fuzz.score_regret(spec, FuzzSystem())
    assert score >= 0.0
    assert details["naive_preset"] == "static"
    assert set(details["hit_by_preset"]) == {"none", "static"}
    oracle_hit = details["hit_by_preset"][details["oracle_preset"]]
    naive_hit = details["hit_by_preset"]["static"]
    assert score == pytest.approx(oracle_hit - naive_hit)


def test_leaf_names_in_composition_order():
    spec = canonical_spec(
        {
            "op": "overlay",
            "sources": [
                {"op": "scenario", "name": "mlscan"},
                {
                    "op": "timescale",
                    "factor": 2.0,
                    "source": {"op": "scenario", "name": "static"},
                },
            ],
        }
    )
    assert fuzz._leaf_names(spec) == ["mlscan", "static"]


# -- thrash_stats -------------------------------------------------------------
def test_thrash_stats_folds_migration_commits():
    def commit(path, kind):
        return {"ev": "migration_commit", "t": 1.0, "path": path, "kind": kind,
                "block": 0, "bytes": 10, "tier": "ssd"}

    records = [
        {"ev": "file_create", "t": 0.0, "path": "/a", "bytes": 10},
        commit("/a", "downgrade"),
        commit("/a", "upgrade"),
        commit("/a", "downgrade"),
        commit("/b", "cache"),  # counts as an upgrade
        commit("/c", "repair"),  # fault recovery: excluded
    ]
    stats = thrash_stats(records)
    assert stats["files_migrated"] == 2
    assert stats["migrations"] == 4
    assert stats["max_migrations_per_file"] == 3
    assert stats["round_trip_files"] == 1  # only /a moved both ways
    assert stats["top_paths"][0] == {"path": "/a", "migrations": 3}


# -- search (stubbed scorers) -------------------------------------------------
def test_find_pathology_rejects_unknown_dimension():
    with pytest.raises(ValueError):
        find_pathology("latency")


def test_find_pathology_returns_minimal_crossing_case(monkeypatch):
    monkeypatch.setitem(fuzz.SCORERS, "churn", fake_scorer(9.0))
    pathology = find_pathology("churn", seed=0, budget=5)
    assert pathology is not None
    assert pathology.score == 9.0
    assert pathology.threshold == DEFAULT_THRESHOLDS["churn"]
    assert pathology.spec == canonical_spec(pathology.spec)
    assert pathology.case_id.startswith("churn_")


def test_find_pathology_none_when_nothing_crosses(monkeypatch):
    monkeypatch.setitem(fuzz.SCORERS, "starvation", fake_scorer(0.0))
    assert find_pathology("starvation", seed=0, budget=5) is None


def test_find_pathology_deterministic_for_seed(monkeypatch):
    monkeypatch.setitem(fuzz.SCORERS, "regret", fake_scorer(1.0))
    first = find_pathology("regret", seed=3, budget=5)
    second = find_pathology("regret", seed=3, budget=5)
    assert first.spec == second.spec


# -- freeze / load / check ----------------------------------------------------
def test_freeze_load_round_trip(tmp_path, monkeypatch):
    monkeypatch.setitem(fuzz.SCORERS, "churn", fake_scorer(0.8))
    pathology = make_pathology(score=0.8)
    path = freeze_case(pathology, str(tmp_path))
    case = json.loads(open(path).read())
    assert case["pathology"] == "churn"
    assert case["spec"] == canonical_spec(MLSCAN_SPEC)
    assert case["observed"] == {"snapshot": 0.8, "fairshare": 0.8}
    assert "churn pathology" in case["comment"]
    assert f"threshold {DEFAULT_THRESHOLDS['churn']:g}" in case["comment"]
    loaded = load_cases(str(tmp_path))
    assert len(loaded) == 1
    assert loaded[0]["_file"] == f"{pathology.case_id}.json"


def test_unfrozen_judges_coverage_by_dimension(tmp_path, monkeypatch):
    monkeypatch.setitem(fuzz.SCORERS, "churn", fake_scorer(0.8))
    assert unfrozen([make_pathology()], str(tmp_path / "missing")) != []
    freeze_case(make_pathology(score=0.8), str(tmp_path))
    # Same dimension, *different* spec: still covered (dimension is the
    # coverage unit — shrink targets drift across hypothesis versions).
    other = make_pathology(
        spec={"op": "scenario", "name": "static", "scale": FUZZ_SCALE}
    )
    assert unfrozen([other], str(tmp_path)) == []
    starved = make_pathology(dimension="starvation")
    assert unfrozen([starved, other], str(tmp_path)) == [starved]


# -- CLI gate -----------------------------------------------------------------
def stub_all_scorers(monkeypatch, crossing=("churn",)):
    for dim in DIMENSION_NAMES:
        score = 9.0 if dim in crossing else 0.0
        monkeypatch.setitem(fuzz.SCORERS, dim, fake_scorer(score))


def test_cli_fuzz_check_fails_on_unfrozen_dimension(tmp_path, monkeypatch, capsys):
    stub_all_scorers(monkeypatch)
    rc = cli.main(
        ["fuzz", "--budget", "2", "--seed", "0", "--check", str(tmp_path)]
    )
    assert rc == 1
    assert "UNFROZEN pathology dimension 'churn'" in capsys.readouterr().err


def test_cli_fuzz_freeze_then_check_passes(tmp_path, monkeypatch, capsys):
    stub_all_scorers(monkeypatch)
    rc = cli.main(
        [
            "fuzz", "--budget", "2", "--seed", "0",
            "--freeze-dir", str(tmp_path), "--check", str(tmp_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "frozen:" in out
    assert "every found pathology dimension is pinned" in out
    assert len(load_cases(str(tmp_path))) == 1


def test_cli_fuzz_single_dimension_and_threshold_flags(tmp_path, monkeypatch, capsys):
    stub_all_scorers(monkeypatch, crossing=())
    rc = cli.main(
        [
            "fuzz", "--dimension", "starvation", "--budget", "2",
            "--threshold", "starvation=0.9",
        ]
    )
    assert rc == 0
    assert "no case crossed 0.9" in capsys.readouterr().out


def test_cli_fuzz_rejects_bad_threshold_flags(capsys):
    assert cli.main(["fuzz", "--threshold", "churn"]) == 2
    assert cli.main(["fuzz", "--threshold", "latency=1"]) == 2
