"""Tests for the seven downgrade policies (Table 1)."""

import pytest

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, HOURS, MB
from repro.core import ReplicationManager, configure_policies
from repro.core.downgrade import (
    LfuDowngradePolicy,
    LfuFDowngradePolicy,
    LifeDowngradePolicy,
    LruDowngradePolicy,
    LrfuDowngradePolicy,
    XgbDowngradePolicy,
)
from repro.core.policy import DowngradeAction
from repro.dfs import DFSClient, Master, NodeManager, OctopusPlacementPolicy
from repro.sim import Simulator


@pytest.fixture
def stack():
    """Small cluster with a live ReplicationManager (no policies yet)."""
    sim = Simulator()
    topo = build_local_cluster(num_workers=3, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    master = Master(topo, OctopusPlacementPolicy(topo, nm, Configuration()), sim)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim)
    return sim, master, client, manager


def create_files(client, sim, specs):
    """specs: list of (path, size, creation_gap).  Returns paths."""
    for path, size, gap in specs:
        sim.run(until=sim.now() + gap)
        client.create(path, size)
    return [s[0] for s in specs]


class TestLru:
    def test_selects_least_recently_used(self, stack):
        sim, master, client, manager = stack
        policy = LruDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create_files(
            client, sim, [("/a", 64 * MB, 1), ("/b", 64 * MB, 1), ("/c", 64 * MB, 1)]
        )
        sim.run(until=sim.now() + 10)
        client.open("/a")  # /a becomes most recent; /b is now oldest
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected.path == "/b"

    def test_unread_files_ranked_by_creation(self, stack):
        sim, master, client, manager = stack
        policy = LruDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create_files(client, sim, [("/old", 64 * MB, 1), ("/new", 64 * MB, 60)])
        assert policy.select_file_to_downgrade(StorageTier.MEMORY).path == "/old"

    def test_none_when_tier_empty(self, stack):
        _, _, _, manager = stack
        policy = LruDowngradePolicy(manager.ctx)
        assert policy.select_file_to_downgrade(StorageTier.MEMORY) is None

    def test_default_action_is_move(self, stack):
        _, _, _, manager = stack
        policy = LruDowngradePolicy(manager.ctx)
        assert policy.how_to_downgrade(None, StorageTier.MEMORY) is DowngradeAction.MOVE


class TestLfu:
    def test_selects_least_frequent(self, stack):
        sim, master, client, manager = stack
        policy = LfuDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create_files(client, sim, [("/a", 64 * MB, 1), ("/b", 64 * MB, 1)])
        for _ in range(3):
            client.open("/a")
        client.open("/b")
        # /b has 1 access vs 3 -> evicted first even though more recent.
        assert policy.select_file_to_downgrade(StorageTier.MEMORY).path == "/b"

    def test_frequency_tie_broken_by_recency(self, stack):
        sim, master, client, manager = stack
        policy = LfuDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create_files(client, sim, [("/a", 64 * MB, 1), ("/b", 64 * MB, 1)])
        client.open("/a")
        sim.run(until=sim.now() + 10)
        client.open("/b")
        assert policy.select_file_to_downgrade(StorageTier.MEMORY).path == "/a"


class TestLrfu:
    def test_prefers_low_weight(self, stack):
        sim, master, client, manager = stack
        configure_policies(manager, downgrade="lrfu")
        policy = manager.downgrade_policy
        create_files(client, sim, [("/hot", 64 * MB, 1), ("/cold", 64 * MB, 1)])
        for _ in range(4):
            client.open("/hot")
        assert policy.select_file_to_downgrade(StorageTier.MEMORY).path == "/cold"

    def test_weight_decays_into_eviction(self, stack):
        sim, master, client, manager = stack
        conf = Configuration({"lrfu.half_life": 60.0})
        manager.conf.update(conf.as_dict())
        policy = LrfuDowngradePolicy(manager.ctx, weights=manager.ensure_lrfu_weights())
        manager.set_downgrade_policy(policy)
        create_files(client, sim, [("/a", 64 * MB, 1), ("/b", 64 * MB, 1)])
        for _ in range(5):
            client.open("/a")  # /a very hot now
        client.open("/b")
        sim.run(until=sim.now() + 100 * HOURS)  # decay wipes the difference
        # After heavy decay both ~0; tie-break by inode id = /a first.
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected is not None


class TestLifeAndLfuF:
    def _aged_stack(self, stack, window=100.0):
        sim, master, client, manager = stack
        manager.conf.set("life.window", window)
        return sim, master, client, manager

    def test_life_evicts_old_lfu_first(self, stack):
        sim, master, client, manager = self._aged_stack(stack)
        policy = LifeDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create_files(client, sim, [("/old1", 64 * MB, 1), ("/old2", 64 * MB, 1)])
        client.open("/old2")
        sim.run(until=sim.now() + 200.0)  # both now idle > window
        create_files(client, sim, [("/fresh", 128 * MB, 1)])
        assert policy.select_file_to_downgrade(StorageTier.MEMORY).path == "/old1"

    def test_life_evicts_largest_recent_when_no_old(self, stack):
        sim, master, client, manager = self._aged_stack(stack, window=1 * HOURS)
        policy = LifeDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create_files(
            client,
            sim,
            [("/small", 32 * MB, 1), ("/big", 256 * MB, 1), ("/mid", 64 * MB, 1)],
        )
        assert policy.select_file_to_downgrade(StorageTier.MEMORY).path == "/big"

    def test_lfuf_evicts_lfu_recent_when_no_old(self, stack):
        sim, master, client, manager = self._aged_stack(stack, window=1 * HOURS)
        policy = LfuFDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        create_files(client, sim, [("/x", 256 * MB, 1), ("/y", 32 * MB, 1)])
        for _ in range(2):
            client.open("/x")
        # /y least frequently used; size irrelevant for LFU-F.
        assert policy.select_file_to_downgrade(StorageTier.MEMORY).path == "/y"


class TestExd:
    def test_selects_lowest_decayed_weight(self, stack):
        sim, master, client, manager = stack
        configure_policies(manager, downgrade="exd")
        policy = manager.downgrade_policy
        create_files(client, sim, [("/hot", 64 * MB, 1), ("/cold", 64 * MB, 1)])
        for _ in range(3):
            client.open("/hot")
        assert policy.select_file_to_downgrade(StorageTier.MEMORY).path == "/cold"


class TestXgb:
    def test_falls_back_to_lru_while_warming(self, stack):
        sim, master, client, manager = stack
        configure_policies(manager, downgrade="xgb")
        policy = manager.downgrade_policy
        assert isinstance(policy, XgbDowngradePolicy)
        create_files(client, sim, [("/a", 64 * MB, 1), ("/b", 64 * MB, 1)])
        sim.run(until=sim.now() + 10)
        client.open("/a")  # strictly more recent than /b's creation
        policy.start_threshold = 0.0
        assert policy.start_downgrade(StorageTier.MEMORY)
        # Model not ready -> LRU order: /b (never read) first.
        assert policy.select_file_to_downgrade(StorageTier.MEMORY).path == "/b"

    def test_queue_skips_deleted_files(self, stack):
        sim, master, client, manager = stack
        create_files(client, sim, [("/a", 64 * MB, 1), ("/b", 64 * MB, 1)])
        configure_policies(manager, downgrade="xgb")
        policy = manager.downgrade_policy
        # Arm only now, so creations above did not already trigger drains.
        policy.start_threshold = 0.0
        assert policy.start_downgrade(StorageTier.MEMORY)
        client.delete("/a")
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected.path == "/b"

    def test_candidate_limit_respected(self, stack):
        sim, master, client, manager = stack
        manager.conf.set("xgb.candidates", 2)
        create_files(
            client, sim, [(f"/f{i}", 32 * MB, 1) for i in range(5)]
        )
        configure_policies(manager, downgrade="xgb")
        policy = manager.downgrade_policy
        policy.start_threshold = 0.0
        policy.start_downgrade(StorageTier.MEMORY)
        assert len(policy._queue) == 2


class TestSharedThresholds:
    def test_start_stop_thresholds(self, stack):
        sim, master, client, manager = stack
        policy = LruDowngradePolicy(manager.ctx)
        manager.set_downgrade_policy(policy)
        assert not policy.start_downgrade(StorageTier.MEMORY)  # empty tier
        # Fill memory beyond 90%: 3 nodes x 1GB = 3GB total.
        create_files(client, sim, [(f"/fill{i}", 150 * MB, 1) for i in range(19)])
        util = manager.monitor.effective_utilization(StorageTier.MEMORY)
        if util > 0.90:
            assert policy.start_downgrade(StorageTier.MEMORY)

    def test_invalid_threshold_config(self, stack):
        _, _, _, manager = stack
        manager.conf.set("downgrade.start_threshold", 0.5)
        manager.conf.set("downgrade.stop_threshold", 0.9)
        with pytest.raises(ValueError):
            LruDowngradePolicy(manager.ctx)
