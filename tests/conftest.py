"""Shared fixtures: small clusters and assembled DFS stacks."""

import pytest

from repro.cluster import build_local_cluster
from repro.common.config import Configuration
from repro.dfs import (
    DFSClient,
    Master,
    NodeManager,
    OctopusPlacementPolicy,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def topology():
    return build_local_cluster(num_workers=4)


@pytest.fixture
def octopus_stack(sim, topology):
    """A Master + Client on a 4-worker cluster with Octopus placement."""
    node_manager = NodeManager(topology)
    placement = OctopusPlacementPolicy(topology, node_manager, Configuration())
    master = Master(topology, placement, sim)
    return master, DFSClient(master)


@pytest.fixture
def master(octopus_stack):
    return octopus_stack[0]


@pytest.fixture
def client(octopus_stack):
    return octopus_stack[1]
