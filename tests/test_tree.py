"""Tests for the regression tree learner."""

import numpy as np
import pytest

from repro.ml.tree import RegressionTree, TreeParams


def logistic_targets(y, margin=0.0):
    """Gradient/hessian of logistic loss at a constant margin."""
    p = 1.0 / (1.0 + np.exp(-margin))
    grad = np.full(len(y), p) - y
    hess = np.full(len(y), max(p * (1 - p), 1e-16))
    return grad, hess


class TestFitBasics:
    def test_single_split_recovers_threshold(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        grad, hess = logistic_targets(y)
        tree = RegressionTree(TreeParams(max_depth=1)).fit(X, grad, hess)
        left = tree.predict(np.array([[0.2]]))[0]
        right = tree.predict(np.array([[0.8]]))[0]
        assert left < 0 < right  # pushes margins toward the labels

    def test_depth_zero_is_stump(self):
        X = np.random.default_rng(0).random((50, 3))
        y = (X[:, 0] > 0.5).astype(float)
        grad, hess = logistic_targets(y)
        tree = RegressionTree(TreeParams(max_depth=0)).fit(X, grad, hess)
        assert tree.depth == 0
        preds = tree.predict(X)
        assert np.allclose(preds, preds[0])

    def test_max_depth_respected(self):
        rng = np.random.default_rng(1)
        X = rng.random((300, 4))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(float)
        grad, hess = logistic_targets(y)
        tree = RegressionTree(TreeParams(max_depth=3)).fit(X, grad, hess)
        assert tree.depth <= 3

    def test_pure_node_not_split(self):
        X = np.ones((20, 2))
        y = np.ones(20)
        grad, hess = logistic_targets(y)
        tree = RegressionTree().fit(X, grad, hess)
        assert tree.node_count == 1  # no distinct values to split on

    def test_input_validation(self):
        tree = RegressionTree()
        with pytest.raises(ValueError):
            tree.fit(np.ones(5), np.ones(5), np.ones(5))  # 1-D X
        with pytest.raises(ValueError):
            tree.fit(np.ones((5, 1)), np.ones(4), np.ones(5))
        with pytest.raises(ValueError):
            tree.fit(np.empty((0, 2)), np.empty(0), np.empty(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.ones((1, 2)))


class TestMissingValues:
    def test_learns_default_direction(self):
        # Feature 0 is often missing; missing implies positive class.
        rng = np.random.default_rng(2)
        X = rng.random((400, 1))
        y = np.zeros(400)
        missing = rng.random(400) < 0.5
        X[missing, 0] = np.nan
        y[missing] = 1.0
        grad, hess = logistic_targets(y)
        tree = RegressionTree(TreeParams(max_depth=2)).fit(X, grad, hess)
        pred_missing = tree.predict(np.array([[np.nan]]))[0]
        pred_present = tree.predict(np.array([[0.5]]))[0]
        assert pred_missing > pred_present

    def test_all_missing_feature_skipped(self):
        X = np.column_stack([np.full(50, np.nan), np.linspace(0, 1, 50)])
        y = (X[:, 1] > 0.5).astype(float)
        grad, hess = logistic_targets(y)
        tree = RegressionTree(TreeParams(max_depth=2)).fit(X, grad, hess)
        usage = tree.feature_usage()
        assert usage[0] == 0
        assert usage[1] > 0


class TestRegularization:
    def test_gamma_prunes_weak_splits(self):
        rng = np.random.default_rng(3)
        X = rng.random((200, 2))
        y = rng.integers(0, 2, 200).astype(float)  # pure noise
        grad, hess = logistic_targets(y)
        loose = RegressionTree(TreeParams(max_depth=6, gamma=0.0)).fit(X, grad, hess)
        strict = RegressionTree(TreeParams(max_depth=6, gamma=10.0)).fit(X, grad, hess)
        assert strict.node_count <= loose.node_count

    def test_lambda_shrinks_leaf_values(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        grad, hess = logistic_targets(y)
        small = RegressionTree(TreeParams(max_depth=1, reg_lambda=0.1)).fit(
            X, grad, hess
        )
        large = RegressionTree(TreeParams(max_depth=1, reg_lambda=100.0)).fit(
            X, grad, hess
        )
        assert np.abs(large.predict(X)).max() < np.abs(small.predict(X)).max()

    def test_min_child_weight_blocks_tiny_leaves(self):
        X = np.array([[0.0], [1.0], [1.0], [1.0]])
        y = np.array([1.0, 0.0, 0.0, 0.0])
        grad, hess = logistic_targets(y)
        # hessian per sample = 0.25; a single-sample leaf has weight 0.25.
        tree = RegressionTree(TreeParams(max_depth=3, min_child_weight=1.0)).fit(
            X, grad, hess
        )
        assert tree.node_count == 1


class TestPredictVectorization:
    def test_matches_scalar_traversal(self):
        rng = np.random.default_rng(4)
        X = rng.random((200, 5))
        X[rng.random((200, 5)) < 0.1] = np.nan
        y = (np.nan_to_num(X[:, 0], nan=0.7) > 0.5).astype(float)
        grad, hess = logistic_targets(y)
        tree = RegressionTree(TreeParams(max_depth=4)).fit(X, grad, hess)
        batch = tree.predict(X)
        singles = np.array([tree.predict(row.reshape(1, -1))[0] for row in X])
        assert np.allclose(batch, singles)

    def test_1d_input_reshaped(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        grad, hess = logistic_targets(y)
        tree = RegressionTree(TreeParams(max_depth=1)).fit(X, grad, hess)
        assert tree.predict(np.array([0.3])).shape == (1,)
