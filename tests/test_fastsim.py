"""Unit tests for the slab-allocated fast simulator core.

The contract under test: :class:`FastSimulator` executes the same events
in the same order with the same diagnostic counters as the reference
:class:`Simulator`, while recycling event storage through a slab + free
list instead of allocating one object per event.
"""

import pytest

from repro.common.errors import SimulationError
from repro.sim.fastsim import _SLAB_CHUNK, FastEvent, FastSimulator
from repro.sim.simulator import PeriodicTimer, Simulator


class TestOrderingEquivalence:
    def test_same_order_as_reference(self):
        """A mixed schedule (ties, priorities, cancellations) fires in
        the identical sequence on both simulators."""
        schedule = [
            (5.0, 0),
            (1.0, 0),
            (5.0, -1),  # pumped-stream priority beats same-time default
            (3.0, 0),
            (5.0, 0),  # same (time, priority): seq breaks the tie
            (2.0, 1),
            (2.0, 0),
        ]
        logs = {}
        for cls in (Simulator, FastSimulator):
            sim = cls()
            log = logs.setdefault(cls.__name__, [])
            for i, (t, prio) in enumerate(schedule):
                sim.at(t, lambda i=i: log.append(i), priority=prio)
            sim.run()
        assert logs["Simulator"] == logs["FastSimulator"]

    def test_nested_scheduling_matches(self):
        """Events scheduled from inside callbacks keep the seq order."""
        logs = {}
        for cls in (Simulator, FastSimulator):
            sim = cls()
            log = logs.setdefault(cls.__name__, [])

            def chain(depth, sim=sim, log=log):
                log.append(depth)
                if depth < 5:
                    sim.after(0.0, lambda: chain(depth + 1))

            sim.at(1.0, lambda: chain(0))
            sim.at(1.0, lambda: log.append("sibling"))
            sim.run()
        assert logs["Simulator"] == logs["FastSimulator"]

    def test_past_scheduling_rejected(self):
        sim = FastSimulator(start=10.0)
        with pytest.raises(SimulationError):
            sim.at(9.0, lambda: None)

    def test_run_until_and_max_events(self):
        sim = FastSimulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda t=t: fired.append(t))
        assert sim.run(until=2.0) == 2
        assert fired == [1.0, 2.0]
        assert sim.now() == 2.0
        with pytest.raises(SimulationError):
            sim.run(max_events=0)


class TestSlab:
    def test_slot_recycling_bounds_capacity(self):
        """Sequential schedule/fire cycles reuse one slab chunk."""
        sim = FastSimulator()
        for i in range(3 * _SLAB_CHUNK):
            sim.at(float(i), lambda: None)
            sim.run(until=float(i))
        assert sim.slab_capacity == _SLAB_CHUNK
        assert sim.events_processed == 3 * _SLAB_CHUNK

    def test_slab_grows_with_concurrent_events(self):
        sim = FastSimulator()
        n = _SLAB_CHUNK + 1
        for i in range(n):
            sim.at(float(i), lambda: None)
        # One chunk was not enough for n concurrently queued events.
        assert sim.slab_capacity >= n
        capacity = sim.slab_capacity
        sim.run()
        # Draining frees every slot; scheduling again reuses them.
        for i in range(n):
            sim.after(1.0, lambda: None)
        assert sim.slab_capacity == capacity

    def test_generation_guard_protects_reused_slot(self):
        """cancel() on an already-fired handle must not kill the new
        occupant of its recycled slot."""
        sim = FastSimulator()
        fired = []
        first = sim.at(1.0, lambda: fired.append("first"))
        sim.run(until=1.0)
        # The slot is free now; the next event takes it over.
        second = sim.at(2.0, lambda: fired.append("second"))
        assert second._slot == first._slot
        first.cancel()  # stale handle: generation mismatch, no-op
        sim.run()
        assert fired == ["first", "second"]
        assert sim.events_cancelled == 0

    def test_cancel_is_idempotent(self):
        sim = FastSimulator()
        event = sim.at(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.events_cancelled == 1
        assert sim.pending == 0
        sim.run()
        assert sim.events_processed == 0

    def test_handle_surface_matches_reference_event(self):
        sim = FastSimulator()
        event = sim.at(4.5, lambda: None)
        assert isinstance(event, FastEvent)
        assert event.time == 4.5
        assert event.cancelled is False
        event.cancel()
        assert event.cancelled is True


class TestCompaction:
    def test_compaction_parity_with_reference(self):
        """Mass cancellation triggers identical tombstone/compaction
        accounting on both engines."""
        counters = {}
        for cls in (Simulator, FastSimulator):
            sim = cls()
            events = [sim.at(float(i + 1), lambda: None) for i in range(300)]
            # Cancelling two thirds crosses the 2 x tombstones > heap
            # compaction threshold partway through.
            for event in events[:200]:
                event.cancel()
            counters[cls.__name__] = (
                sim.events_cancelled,
                sim.heap_compactions,
                sim.pending,
                sim.heap_size,
            )
            sim.run()
            counters[cls.__name__] += (sim.events_processed,)
        assert counters["Simulator"] == counters["FastSimulator"]
        assert counters["FastSimulator"][1] >= 1  # compaction did fire

    def test_compaction_frees_tombstone_slots(self):
        sim = FastSimulator()
        events = [sim.at(float(i + 1), lambda: None) for i in range(200)]
        for event in events:
            event.cancel()
        assert sim.heap_compactions >= 1
        assert sim.pending == 0
        # All slots are reusable: a fresh burst fits without growth.
        capacity = sim.slab_capacity
        for i in range(200):
            sim.after(1.0, lambda: None)
        assert sim.slab_capacity == capacity


class TestTimers:
    def test_periodic_timer_stop_during_fire(self):
        """Stopping a timer from its own callback must not cancel the
        event that now occupies the recycled slot."""
        sim = FastSimulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now()))

        def stopper():
            timer.stop()
            sim.after(0.5, lambda: fired.append("late"))

        sim.at(2.5, stopper)
        sim.run()
        assert fired == [1.0, 2.0, "late"]
        assert timer.stopped

    def test_periodic_timer_parity(self):
        ticks = {}
        for cls in (Simulator, FastSimulator):
            sim = cls()
            log = ticks.setdefault(cls.__name__, [])
            timer = PeriodicTimer(sim, 2.0, lambda: log.append(sim.now()))
            sim.at(7.0, timer.stop)
            sim.run()
        assert ticks["Simulator"] == ticks["FastSimulator"] == [2.0, 4.0, 6.0]
