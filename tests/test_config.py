"""Tests for the typed Configuration."""

import pytest

from repro.common.config import Configuration
from repro.common.errors import ConfigurationError
from repro.common.units import GB, MINUTES


class TestBasics:
    def test_get_with_default(self):
        conf = Configuration()
        assert conf.get("missing", 7) == 7

    def test_set_and_get(self):
        conf = Configuration()
        conf.set("a.b", 1)
        assert conf.get("a.b") == 1
        assert "a.b" in conf

    def test_init_from_mapping_and_len(self):
        conf = Configuration({"x": 1, "y": 2})
        assert len(conf) == 2
        assert sorted(conf) == ["x", "y"]

    def test_copy_is_independent(self):
        conf = Configuration({"x": 1})
        clone = conf.copy()
        clone.set("x", 2)
        assert conf.get("x") == 1

    def test_update_and_as_dict(self):
        conf = Configuration()
        conf.update({"a": 1, "b": 2})
        assert conf.as_dict() == {"a": 1, "b": 2}


class TestTypedGetters:
    def test_get_int_coerces_string(self):
        conf = Configuration({"n": "42"})
        assert conf.get_int("n") == 42

    def test_get_float(self):
        conf = Configuration({"f": "2.5"})
        assert conf.get_float("f") == 2.5

    @pytest.mark.parametrize("raw,expected", [
        (True, True), ("true", True), ("YES", True), ("1", True), ("on", True),
        (False, False), ("false", False), ("no", False), ("0", False), ("off", False),
    ])
    def test_get_bool(self, raw, expected):
        conf = Configuration({"flag": raw})
        assert conf.get_bool("flag") is expected

    def test_get_bool_malformed(self):
        conf = Configuration({"flag": "maybe"})
        with pytest.raises(ConfigurationError):
            conf.get_bool("flag")

    def test_get_bytes_parses_suffix(self):
        conf = Configuration({"size": "4GB"})
        assert conf.get_bytes("size") == 4 * GB

    def test_get_bytes_plain_int(self):
        conf = Configuration({"size": 1024})
        assert conf.get_bytes("size") == 1024

    def test_get_duration_parses_suffix(self):
        conf = Configuration({"w": "30min"})
        assert conf.get_duration("w") == 30 * MINUTES

    def test_missing_required_raises(self):
        conf = Configuration()
        with pytest.raises(ConfigurationError):
            conf.get_int("absent")

    def test_default_used_when_missing(self):
        conf = Configuration()
        assert conf.get_duration("absent", 60.0) == 60.0
