"""Tests for ROC/AUC and classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    auc,
    confusion_matrix,
    log_loss,
    precision_recall,
    roc_curve,
)


class TestRocCurve:
    def test_perfect_classifier(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert auc(y, scores) == pytest.approx(1.0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_inverted_classifier(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc(y, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert abs(auc(y, scores) - 0.5) < 0.05

    def test_monotone_curve(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 500)
        scores = rng.random(500)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_tied_scores_collapse_points(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert len(fpr) == 2  # origin + single point

    def test_validation(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 2]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            roc_curve(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 1]), np.array([0.1]))


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(
            2 / 3
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestConfusionAndPr:
    def test_confusion_matrix(self):
        y = np.array([1, 1, 0, 0, 1])
        p = np.array([1, 0, 0, 1, 1])
        tn, fp, fn, tp = confusion_matrix(y, p)
        assert (tn, fp, fn, tp) == (1, 1, 1, 2)

    def test_precision_recall(self):
        y = np.array([1, 1, 0, 0, 1])
        p = np.array([1, 0, 0, 1, 1])
        precision, recall = precision_recall(y, p)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)

    def test_undefined_returns_zero(self):
        y = np.array([0, 0])
        p = np.array([0, 0])
        precision, recall = precision_recall(y, p)
        assert precision == 0.0
        assert recall == 0.0


class TestLogLoss:
    def test_perfect_predictions_near_zero(self):
        y = np.array([0, 1])
        p = np.array([0.001, 0.999])
        assert log_loss(y, p) < 0.01

    def test_confident_wrong_is_large(self):
        y = np.array([0.0, 1.0])
        bad = log_loss(y, np.array([0.99, 0.01]))
        good = log_loss(y, np.array([0.5, 0.5]))
        assert bad > good

    def test_clipping_avoids_infinity(self):
        y = np.array([1.0])
        assert np.isfinite(log_loss(y, np.array([0.0])))
