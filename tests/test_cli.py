"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "FB"
        assert args.placement == "octopus"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--workload", "nope"])


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("fig02", "fig06", "table03", "fig14", "overheads"):
            assert name in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_simulate_small(self, capsys):
        code = main(
            [
                "simulate",
                "--workload",
                "FB",
                "--scale",
                "0.05",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                "--workers",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit ratio" in out
        assert "jobs finished" in out

    def test_synthesize_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code = main(
            [
                "synthesize",
                "--workload",
                "CMU",
                "--scale",
                "0.05",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["name"] == "CMU"
        assert data["jobs"]


class TestSimulateExtensions:
    def test_cache_mode_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "simulate",
                "--workload",
                "FB",
                "--scale",
                "0.03",
                "--placement",
                "hdfs",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                "--cache-mode",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs finished" in out

    def test_outages_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "simulate",
                "--workload",
                "FB",
                "--scale",
                "0.03",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                "--outages",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "outages:" in out
