"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "FB"
        assert args.placement == "octopus"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--workload", "nope"])


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("fig02", "fig06", "table03", "fig14", "overheads"):
            assert name in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_simulate_small(self, capsys):
        code = main(
            [
                "simulate",
                "--workload",
                "FB",
                "--scale",
                "0.05",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                "--workers",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit ratio" in out
        assert "jobs finished" in out

    def test_synthesize_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code = main(
            [
                "synthesize",
                "--workload",
                "CMU",
                "--scale",
                "0.05",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["name"] == "CMU"
        assert data["jobs"]


class TestListDiscovery:
    def test_list_all_dimensions(self, capsys):
        from repro.common.catalog import catalog

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for kind, names in catalog().items():
            assert f"{kind}:" in out
            for name in names:
                assert name in out

    def test_list_one_dimension(self, capsys):
        assert main(["list", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("scenarios:")
        for name in ("fb", "cmu", "diurnal", "flashcrowd", "pipeline"):
            assert name in out

    def test_list_unknown_dimension_errors(self, capsys):
        assert main(["list", "flavours"]) == 2

    def test_catalog_matches_cli_choices(self):
        """The discovery helper and the argparse choices agree."""
        from repro.cluster.hardware import hierarchy_names
        from repro.common.catalog import catalog
        from repro.engine.iomodel import IO_MODEL_NAMES
        from repro.workload.scenarios import scenario_names

        names = catalog()
        assert names["tiers"] == sorted(hierarchy_names())
        assert names["io-models"] == sorted(IO_MODEL_NAMES)
        assert names["scenarios"] == scenario_names()


class TestScenarioCommands:
    def test_scenario_list(self, capsys):
        from repro.workload.scenarios import scenario_names

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert f"{name}:" in out
        assert "params:" in out

    def test_scenario_stats(self, capsys):
        code = main(
            ["scenario", "stats", "mlscan", "--scale", "0.2", "--param", "shards=16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "jobs per bin:" in out

    def test_scenario_stats_max_events(self, capsys):
        code = main(["scenario", "stats", "oscillating", "--max-events", "5"])
        assert code == 0
        assert "events:           5" in capsys.readouterr().out

    def test_scenario_run(self, capsys):
        code = main(
            [
                "scenario",
                "run",
                "flashcrowd",
                "--scale",
                "0.05",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                "--workers",
                "4",
                "--perf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario:         flashcrowd" in out
        assert "jobs finished" in out
        assert "events/second" in out

    def test_scenario_run_external_trace(self, tmp_path, capsys):
        trace_path = str(tmp_path / "small.jsonl.gz")
        assert (
            main(
                [
                    "synthesize",
                    "--workload",
                    "FB",
                    "--scale",
                    "0.05",
                    "--out",
                    trace_path,
                ]
            )
            == 0
        )
        code = main(["scenario", "run", "--events", trace_path, "--workers", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario:         FB" in out

    def test_scenario_name_and_events_conflict(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["scenario", "run", "fb", "--events", "x.jsonl"])

    def test_events_rejects_generator_knobs(self, capsys):
        """--scale/--param would be silently ignored on replays: error."""
        for extra in (["--scale", "0.1"], ["--param", "k=1"]):
            with pytest.raises(SystemExit):
                main(["scenario", "stats", "--events", "x.jsonl"] + extra)

    def test_reserved_param_redirected(self, capsys):
        with pytest.raises(SystemExit):
            main(["scenario", "stats", "fb", "--param", "seed=7"])
        assert "--seed" in capsys.readouterr().err

    def test_scenario_run_requires_source(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run"])

    def test_unknown_scenario_errors(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            main(["scenario", "stats", "nope"])

    def test_bad_param_errors(self):
        with pytest.raises(SystemExit):
            main(["scenario", "stats", "mlscan", "--param", "shards"])


class TestSimulateExtensions:
    def test_cache_mode_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "simulate",
                "--workload",
                "FB",
                "--scale",
                "0.03",
                "--placement",
                "hdfs",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                "--cache-mode",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs finished" in out

    def test_outages_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "simulate",
                "--workload",
                "FB",
                "--scale",
                "0.03",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                "--outages",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "outages:" in out


class TestObservabilityFlags:
    def _simulate(self, *extra):
        return main(
            [
                "simulate",
                "--workload",
                "FB",
                "--scale",
                "0.03",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                *extra,
            ]
        )

    def test_trace_and_exports_written(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        chrome = str(tmp_path / "run_chrome.json")
        ts = str(tmp_path / "run_ts.json")
        code = self._simulate(
            "--trace", trace, "--chrome-trace", chrome, "--timeseries", ts
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "trace records" in err and "timeseries samples" in err
        records = [json.loads(line) for line in open(trace)]
        assert records and all("ev" in r and "seq" in r for r in records)
        assert json.load(open(chrome))["traceEvents"]
        assert len(json.load(open(ts))["t"]) >= 2

        assert main(["trace", "summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "job_finish" in out

        path = next(r["path"] for r in records if r["ev"] == "file_create")
        assert main(["trace", "explain", trace, path]) == 0
        out = capsys.readouterr().out
        assert "placed on" in out

    def test_off_by_default(self, capsys):
        assert self._simulate() == 0
        assert "trace records" not in capsys.readouterr().err


class TestLiveCommands:
    def export(self, tmp_path, name="fb", out="stream.jsonl"):
        path = str(tmp_path / out)
        assert (
            main(["scenario", "run", name, "--scale", "0.05", "--out", path]) == 0
        )
        return path

    def test_scenario_run_out_exports_instead_of_running(self, tmp_path, capsys):
        path = self.export(tmp_path)
        err = capsys.readouterr().err
        assert "wrote" in err and path in err
        # The exported file ends with the end-of-stream sentinel.
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        assert json.loads(lines[-1])["kind"] == "end"

    def test_live_replays_exported_stream(self, tmp_path, capsys):
        path = self.export(tmp_path)
        code = main(
            [
                "live",
                path,
                "--workers",
                "4",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                "--perf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "live stream:      FB" in out
        assert "events received:" in out
        assert "jobs finished" in out
        assert "pump lead:" in out

    def test_live_gzip_export_round_trip(self, tmp_path, capsys):
        path = self.export(tmp_path, out="stream.jsonl.gz")
        assert main(["live", path, "--workers", "4"]) == 0
        assert "jobs finished" in capsys.readouterr().out

    def test_live_preset_by_scenario_flag(self, tmp_path, capsys):
        path = self.export(tmp_path, name="flashcrowd")
        code = main(
            [
                "live",
                path,
                "--workers",
                "4",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                "--scenario",
                "flashcrowd",
            ]
        )
        assert code == 0
        assert "preset:           flashcrowd" in capsys.readouterr().out


class TestPresetFlag:
    def run_scenario(self, preset):
        return main(
            [
                "scenario",
                "run",
                "flashcrowd",
                "--scale",
                "0.05",
                "--downgrade",
                "lru",
                "--upgrade",
                "osa",
                "--workers",
                "4",
                "--preset",
                preset,
            ]
        )

    def test_preset_auto_reported(self, capsys):
        assert self.run_scenario("auto") == 0
        assert "preset:           flashcrowd" in capsys.readouterr().out

    def test_preset_none_suppressed(self, capsys):
        assert self.run_scenario("none") == 0
        assert "preset:" not in capsys.readouterr().out

    def test_preset_explicit(self, capsys):
        assert self.run_scenario("mlscan") == 0
        assert "preset:           mlscan" in capsys.readouterr().out

    def test_unknown_preset_errors(self):
        with pytest.raises(ValueError, match="unknown preset"):
            self.run_scenario("nope")

    def test_list_presets(self, capsys):
        from repro.core.presets import preset_names

        assert main(["list", "presets"]) == 0
        out = capsys.readouterr().out
        for name in preset_names():
            assert name in out


class TestSweepCommands:
    def spec_file(self, tmp_path):
        """A two-cell JSON spec (mlscan at tiny scale, two seeds)."""
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "tiny",
                    "scenarios": ["mlscan"],
                    "seeds": [1, 2],
                    "scales": [0.05],
                }
            )
        )
        return str(path)

    def test_sweep_cells_smoke_lists_twelve(self, capsys):
        assert main(["sweep", "cells", "--smoke"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 12
        # Each line: <16-hex cell id>  <label>
        for line in lines:
            cell_id, label = line.split(None, 1)
            assert len(cell_id) == 16
            assert int(cell_id, 16) >= 0
        assert "12 cell(s)" in captured.err

    def test_sweep_spec_and_smoke_conflict(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "cells", "smoke", "--smoke"])

    def test_sweep_unknown_spec_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "run", "no-such-spec"])
        assert "no such sweep spec" in capsys.readouterr().err

    def test_sweep_run_resume_and_report(self, tmp_path, capsys):
        spec = self.spec_file(tmp_path)
        store = str(tmp_path / "sweeps")
        out = str(tmp_path / "report.json")
        assert (
            main(["sweep", "run", spec, "--store", store, "--out", out]) == 0
        )
        captured = capsys.readouterr()
        assert "2/2 cells ok" in captured.out
        report = json.loads(open(out).read())
        assert report["summary"]["completed"] == 2

        # Resuming recomputes nothing.
        assert (
            main(
                ["sweep", "run", spec, "--store", store, "--out", out,
                 "--resume"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "reusing 2, running 0" in captured.err

        # The stored sweep re-merges into the same report.
        assert main(["sweep", "report", "tiny", "--store", store]) == 0
        assert "2/2 cells ok" in capsys.readouterr().out

    def test_sweep_report_without_store_errors(self, tmp_path, capsys):
        assert (
            main(["sweep", "report", "ghost", "--store", str(tmp_path)]) == 2
        )
        assert "no sweep manifest" in capsys.readouterr().err

    def test_sweep_run_markdown(self, tmp_path, capsys):
        spec = self.spec_file(tmp_path)
        assert main(["sweep", "run", spec, "--markdown"]) == 0
        assert "| cell |" in capsys.readouterr().out

    def test_list_sweeps(self, capsys):
        assert main(["list", "sweeps"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out
        assert "scenario-matrix" in out


class TestProfileFlag:
    """--profile is one shared flag: simulate, scenario run, and live all
    route through the same cProfile wrapper."""

    def test_scenario_run_profile(self, capsys):
        code = main(
            ["scenario", "run", "mlscan", "--scale", "0.05", "--workers",
             "4", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-- profile (top 25 by cumulative time)" in out
        assert "cumtime" in out

    def test_live_profile(self, tmp_path, capsys):
        path = str(tmp_path / "stream.jsonl")
        assert (
            main(
                ["scenario", "run", "fb", "--scale", "0.05", "--out", path]
            )
            == 0
        )
        code = main(["live", path, "--workers", "4", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- profile (top 25 by cumulative time)" in out

    def test_simulate_profile(self, capsys):
        code = main(
            ["simulate", "--workload", "FB", "--scale", "0.05", "--profile"]
        )
        assert code == 0
        assert "-- profile (top 25 by cumulative time)" in capsys.readouterr().out
