"""Property-based tests (hypothesis) on core invariants.

Covers the data structures whose correctness everything else rests on:
the event queue, device capacity accounting, the namespace, block
splitting, feature normalization, weight formulas, ROC metrics, and the
tree/boosting learners.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.hardware import StorageTier, make_device
from repro.common.errors import InsufficientSpaceError
from repro.common.units import MB, format_bytes, parse_bytes
from repro.core.weights import ExdWeights, LrfuWeights
from repro.dfs.block import split_into_block_sizes
from repro.dfs.namespace import FSDirectory, normalize_path
from repro.ml.features import FeatureSpec, build_feature_vector, label_for_window
from repro.ml.gbt import sigmoid
from repro.ml.metrics import auc, roc_curve
from repro.sim import Simulator


# --- simulator ---------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_simulator_executes_in_nondecreasing_time_order(times):
    sim = Simulator()
    seen = []
    for t in times:
        sim.at(t, lambda t=t: seen.append(sim.now()))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(times)


# --- devices -------------------------------------------------------------------
@given(
    st.lists(
        st.integers(min_value=1, max_value=64 * MB), min_size=1, max_size=40
    )
)
def test_device_accounting_never_negative_or_overcommitted(sizes):
    device = make_device("d", StorageTier.SSD, 256 * MB)
    held = {}
    for i, size in enumerate(sizes):
        try:
            device.allocate(i, size)
            held[i] = size
        except InsufficientSpaceError:
            pass
        assert 0 <= device.used <= device.capacity
    for i, size in list(held.items()):
        device.release(i, size)
    assert device.used == 0


# --- block splitting ---------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=10**12),
    st.integers(min_value=1, max_value=10**9),
)
def test_block_sizes_sum_and_bounds(file_size, block_size):
    # Keep the block list size tractable (a 1-byte block size with a
    # terabyte file would build a trillion-entry list).
    assume(file_size // block_size <= 100_000)
    sizes = split_into_block_sizes(file_size, block_size)
    assert sum(sizes) == file_size
    assert all(0 < s <= block_size for s in sizes)
    if sizes:
        assert all(s == block_size for s in sizes[:-1])


# --- namespace -----------------------------------------------------------------------
_name = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=8,
)


@given(st.lists(st.lists(_name, min_size=1, max_size=4), min_size=1, max_size=20))
def test_namespace_create_then_delete_restores_empty(path_parts):
    fs = FSDirectory()
    created = []
    for parts in path_parts:
        path = "/" + "/".join(parts)
        if fs.exists(path):
            continue
        try:
            fs.create_file(path, creation_time=0.0)
            created.append(path)
        except Exception:
            continue  # parent is a file, etc.
    assert fs.file_count() == len(created)
    for path in created:
        fs.delete(path)
    assert fs.file_count() == 0


@given(st.lists(_name, min_size=1, max_size=6))
def test_normalize_path_idempotent(parts):
    path = "/" + "//".join(parts) + "/"
    normalized = normalize_path(path)
    assert normalize_path(normalized) == normalized


# --- units ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10**15))
def test_format_parse_bytes_roundtrip_within_precision(value):
    text = format_bytes(value)
    parsed = parse_bytes(text)
    # Rendering keeps 2 decimals: round-trip within 1%.
    assert abs(parsed - value) <= max(0.01 * value, 1)


# --- features ----------------------------------------------------------------------------
@given(
    size=st.integers(min_value=0, max_value=100 * 2**30),
    creation=st.floats(min_value=0, max_value=1e5),
    gaps=st.lists(st.floats(min_value=0.1, max_value=1e5), max_size=20),
    after=st.floats(min_value=0.0, max_value=1e5),
)
def test_feature_vector_bounded_and_shaped(size, creation, gaps, after):
    accesses = []
    t = creation
    for gap in gaps:
        t += gap
        accesses.append(t)
    reference = t + after if accesses else creation + after
    spec = FeatureSpec()
    vector = build_feature_vector(spec, size, creation, accesses, reference)
    assert vector.shape == (spec.num_features,)
    present = vector[~np.isnan(vector)]
    assert np.all((present >= 0.0) & (present <= 1.0))


@given(
    window=st.floats(min_value=1.0, max_value=1e4),
    reference=st.floats(min_value=0.0, max_value=1e6),
    offsets=st.lists(st.floats(min_value=-1e5, max_value=1e5), max_size=10),
)
def test_label_matches_direct_definition(window, reference, offsets):
    accesses = [reference + o for o in offsets]
    expected = int(any(reference < t <= reference + window for t in accesses))
    assert label_for_window(accesses, reference, window) == expected


# --- weights -------------------------------------------------------------------------------
@given(
    access_gaps=st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30
    )
)
def test_lrfu_weight_bounded_by_accumulation(access_gaps):
    fs = FSDirectory()
    file = fs.create_file("/f", creation_time=0.0)
    weights = LrfuWeights(half_life=3600.0)
    weights.on_create(file, 0.0)
    t = 0.0
    for gap in access_gaps:
        t += gap
        w = weights.on_access(file, t)
        assert 1.0 <= w <= len(access_gaps) + 1.0
    # Decay only shrinks the weight.
    assert weights.effective(file, t + 1e6) <= weights.raw_weight(file)


@given(
    access_gaps=st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30
    )
)
def test_exd_weight_positive_and_decaying(access_gaps):
    fs = FSDirectory()
    file = fs.create_file("/f", creation_time=0.0)
    weights = ExdWeights()
    weights.on_create(file, 0.0)
    t = 0.0
    for gap in access_gaps:
        t += gap
        w = weights.on_access(file, t)
        assert w >= 1.0
    assert weights.effective(file, t) >= weights.effective(file, t + 1e7)


# --- ML metrics ----------------------------------------------------------------------------
@given(
    labels=st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=200),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_auc_bounded_and_flip_invariant(labels, seed):
    assume(0 < sum(labels) < len(labels))
    y = np.array(labels, dtype=float)
    scores = np.random.default_rng(seed).random(len(y))
    value = auc(y, scores)
    assert 0.0 <= value <= 1.0
    # Negating scores mirrors the AUC around 0.5.
    assert auc(y, -scores) == pytest.approx(1.0 - value, abs=1e-9)


@given(
    labels=st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=100),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_roc_endpoints(labels, seed):
    assume(0 < sum(labels) < len(labels))
    y = np.array(labels, dtype=float)
    scores = np.random.default_rng(seed).random(len(y))
    fpr, tpr, _ = roc_curve(y, scores)
    assert fpr[0] == 0.0 and tpr[0] == 0.0
    assert fpr[-1] == pytest.approx(1.0)
    assert tpr[-1] == pytest.approx(1.0)


@given(st.floats(min_value=-700, max_value=700))
def test_sigmoid_matches_reference(x):
    expected = 1.0 / (1.0 + math.exp(-x)) if x > -700 else 0.0
    assert sigmoid(np.array([x]))[0] == pytest.approx(expected, rel=1e-9)


# --- GBT -----------------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_gbt_probabilities_in_unit_interval(seed):
    from repro.ml.gbt import GBTParams, GradientBoostedTrees

    rng = np.random.default_rng(seed)
    X = rng.random((80, 3))
    y = (X[:, 0] > rng.random()).astype(int)
    assume(0 < y.sum() < len(y))
    model = GradientBoostedTrees(GBTParams(num_rounds=3, max_depth=3)).fit(X, y)
    probs = model.predict_proba(rng.random((40, 3)))
    assert np.all((probs >= 0.0) & (probs <= 1.0))
