"""Tests for per-prediction path attribution."""

import numpy as np
import pytest

from repro.ml.explain import explain_prediction, tree_contributions
from repro.ml.gbt import GBTParams, GradientBoostedTrees


def make_model(seed=0, rounds=5):
    rng = np.random.default_rng(seed)
    X = rng.random((500, 4))
    # Feature 0 dominates; feature 3 is pure noise.
    y = (X[:, 0] > 0.5).astype(int)
    model = GradientBoostedTrees(GBTParams(num_rounds=rounds, max_depth=4)).fit(X, y)
    return model, X


class TestAttribution:
    def test_contributions_sum_to_margin(self):
        model, X = make_model()
        for row in X[:20]:
            explanation = explain_prediction(model, row)
            margin = model.predict_margin(row.reshape(1, -1))[0]
            reconstructed = explanation.bias + sum(
                explanation.contributions.values()
            )
            assert reconstructed == pytest.approx(margin, abs=1e-9)
            assert explanation.probability == pytest.approx(
                model.predict_proba(row.reshape(1, -1))[0], abs=1e-9
            )

    def test_dominant_feature_gets_most_credit(self):
        model, X = make_model()
        credit = {}
        for row in X[:50]:
            for feature, value in explain_prediction(model, row).contributions.items():
                credit[feature] = credit.get(feature, 0.0) + abs(value)
        assert max(credit, key=credit.get) == 0

    def test_direction_matches_prediction(self):
        model, _ = make_model()
        high = explain_prediction(model, np.array([0.95, 0.5, 0.5, 0.5]))
        low = explain_prediction(model, np.array([0.05, 0.5, 0.5, 0.5]))
        assert high.contributions.get(0, 0.0) > low.contributions.get(0, 0.0)
        assert high.probability > low.probability

    def test_missing_values_follow_default_direction(self):
        model, _ = make_model()
        explanation = explain_prediction(
            model, np.array([np.nan, 0.5, 0.5, 0.5])
        )
        # Still decomposes exactly.
        margin = model.predict_margin(
            np.array([[np.nan, 0.5, 0.5, 0.5]])
        )[0]
        assert explanation.bias + sum(
            explanation.contributions.values()
        ) == pytest.approx(margin, abs=1e-9)

    def test_top_features_named_and_sorted(self):
        model, X = make_model()
        explanation = explain_prediction(model, X[0])
        top = explanation.top_features(names=["a", "b", "c", "d"], limit=2)
        assert len(top) <= 2
        assert all(isinstance(name, str) for name, _ in top)
        magnitudes = [abs(v) for _, v in top]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_unfitted_tree_rejected(self):
        from repro.ml.tree import RegressionTree

        with pytest.raises(ValueError):
            tree_contributions(RegressionTree(), np.zeros(3))
