"""Tests for per-file statistics tracking."""

from repro.core.stats import FileStatistics, StatisticsRegistry
from repro.dfs.namespace import FSDirectory


def make_file(path="/f", creation=0.0, size=100):
    fs = FSDirectory()
    return fs.create_file(path, creation_time=creation, size=size)


class TestFileStatistics:
    def test_initial_state(self):
        stats = FileStatistics(make_file(creation=5.0, size=42))
        assert stats.size == 42
        assert stats.creation_time == 5.0
        assert stats.total_accesses == 0
        assert stats.last_access_time is None
        assert stats.last_access_or_creation == 5.0

    def test_record_access(self):
        stats = FileStatistics(make_file())
        stats.record_access(10.0)
        stats.record_access(20.0)
        assert stats.total_accesses == 2
        assert stats.last_access_time == 20.0
        assert list(stats.access_times) == [10.0, 20.0]

    def test_only_last_k_kept_but_count_total(self):
        stats = FileStatistics(make_file(), k=3)
        for t in range(10):
            stats.record_access(float(t))
        assert list(stats.access_times) == [7.0, 8.0, 9.0]
        assert stats.total_accesses == 10

    def test_idle_time_and_age(self):
        stats = FileStatistics(make_file(creation=100.0))
        assert stats.idle_time(150.0) == 50.0
        stats.record_access(120.0)
        assert stats.idle_time(150.0) == 30.0
        assert stats.age(150.0) == 50.0


class TestStatisticsRegistry:
    def test_create_access_delete_lifecycle(self):
        registry = StatisticsRegistry()
        file = make_file()
        registry.on_create(file)
        assert file in registry
        registry.on_access(file, 5.0)
        assert registry.get(file).total_accesses == 1
        registry.on_delete(file)
        assert file not in registry
        assert len(registry) == 0

    def test_access_to_untracked_file_auto_registers(self):
        registry = StatisticsRegistry()
        file = make_file()
        registry.on_access(file, 3.0)
        assert registry.get(file).total_accesses == 1

    def test_get_or_create(self):
        registry = StatisticsRegistry()
        file = make_file()
        first = registry.get_or_create(file)
        assert registry.get_or_create(file) is first

    def test_lru_order_uses_creation_for_unread(self):
        registry = StatisticsRegistry()
        fs = FSDirectory()
        a = fs.create_file("/a", creation_time=10.0)
        b = fs.create_file("/b", creation_time=5.0)
        c = fs.create_file("/c", creation_time=1.0)
        for f in (a, b, c):
            registry.on_create(f)
        registry.on_access(c, 50.0)  # c becomes most recent
        order = registry.lru_order([a, b, c])
        assert [f.path for f in order] == ["/b", "/a", "/c"]
        assert [f.path for f in registry.mru_order([a, b, c])] == ["/c", "/a", "/b"]

    def test_k_propagates(self):
        registry = StatisticsRegistry(k=2)
        file = make_file()
        stats = registry.on_create(file)
        for t in range(5):
            stats.record_access(float(t))
        assert len(stats.access_times) == 2

    def test_estimated_bytes(self):
        assert StatisticsRegistry(k=12).estimated_bytes_per_file() >= 12 * 8
