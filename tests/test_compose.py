"""Tests for the scenario composition algebra (repro.workload.compose).

Property suite (hypothesis) plus unit coverage:

* determinism — a composed stream is a pure function of its canonical
  spec, and re-iterating one stream object reproduces it exactly;
* overlay/concat associativity up to event order (isolate=False, over
  namespace-disjoint leaves);
* timescale(1) is the identity (the canonical spec collapses it), and
  timescale(k) maps every event time by exactly k;
* event-count and byte conservation through overlay/concat;
* numbering/ordering guards hold on composed streams (sequential job
  ids, non-decreasing sort keys);
* spec canonicalization is hash-stable (default dropping, numeric
  coercion, key order) and rejects malformed specs loudly;
* laziness — windowed composition of a huge-scale source pulls O(window)
  events, never the whole stream;
* the merge_timed_sources + EventWriter round-trip preserves
  FileDeletion ordering, and overlay's default namespace isolation
  keeps same-scenario sources from colliding on paths (the tie-rule
  hazard the isolation exists to prevent).
"""

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.compose import (
    ComposeSpecError,
    build_compose,
    canonical_spec,
    compose_name,
    concat,
    overlay,
    parse_spec,
    scenario,
    spec_hash,
    take,
    tenant_tag,
    tenant_prefixes,
    timescale,
    until,
)
from repro.workload.jobs import (
    FileCreation,
    FileDeletion,
    TraceJob,
    event_sort_key,
    event_time,
)
from repro.workload.streams import StreamOrderError, merge_timed_sources

#: Distinct-namespace generated leaves (each scenario has its own /data
#: prefix, so isolate=False compositions of *different* names are safe).
LEAVES = ["flashcrowd", "mlscan", "oscillating", "static", "dynamic", "phaseshift"]

leaf_st = st.sampled_from(LEAVES)
seed_st = st.integers(min_value=0, max_value=50)


def leaf(name, seed=1, scale=0.05):
    return scenario(name, seed=seed, scale=scale)


def signature(stream):
    return [repr(event) for event in stream.events()]


def masked(stream):
    """Event multiset signature with job ids masked (order-insensitive)."""
    out = []
    for event in stream.events():
        if isinstance(event, TraceJob):
            out.append(
                ("job", event.submit_time, tuple(event.input_paths), event.input_size)
            )
        elif isinstance(event, FileCreation):
            out.append(("create", event.time, event.path, event.size))
        else:
            out.append(("delete", event.time, event.path))
    return sorted(out)


# -- determinism --------------------------------------------------------------
@given(name=leaf_st, seed=seed_st)
@settings(max_examples=10, deadline=None)
def test_composed_streams_deterministic_under_seed(name, seed):
    other = LEAVES[(LEAVES.index(name) + 1) % len(LEAVES)]
    stream = overlay(leaf(name, seed), leaf(other, seed + 1))
    first = signature(stream)
    assert first == signature(stream), "re-iteration must reproduce the stream"
    rebuilt = build_compose(json.loads(json.dumps(stream.spec)))
    assert first == signature(rebuilt), "the spec must rebuild the stream"


@given(name=leaf_st, seed=seed_st)
@settings(max_examples=6, deadline=None)
def test_different_seeds_decorrelate(name, seed):
    assert signature(leaf(name, seed)) != signature(leaf(name, seed + 1))


# -- associativity up to event order ------------------------------------------
@given(seed=seed_st)
@settings(max_examples=5, deadline=None)
def test_overlay_associative_up_to_event_order(seed):
    a, b, c = (leaf(n, seed) for n in ("flashcrowd", "mlscan", "static"))
    flat = overlay(a, b, c, isolate=False)
    a2, b2, c2 = (leaf(n, seed) for n in ("flashcrowd", "mlscan", "static"))
    nested = overlay(overlay(a2, b2, isolate=False), c2, isolate=False)
    assert masked(flat) == masked(nested)


@given(seed=seed_st)
@settings(max_examples=5, deadline=None)
def test_concat_associative_up_to_event_order(seed):
    a, b, c = (leaf(n, seed) for n in ("static", "phaseshift", "dynamic"))
    flat = concat(a, b, c, isolate=False)
    a2, b2, c2 = (leaf(n, seed) for n in ("static", "phaseshift", "dynamic"))
    nested = concat(concat(a2, b2, isolate=False), c2, isolate=False)
    assert masked(flat) == masked(nested)
    assert flat.duration == pytest.approx(nested.duration)


# -- timescale ----------------------------------------------------------------
def test_timescale_one_is_identity():
    base = leaf("oscillating")
    scaled = timescale(base, 1.0)
    assert scaled.spec == base.spec, "canonical spec collapses timescale(1)"
    assert signature(scaled) == signature(leaf("oscillating"))


@given(name=leaf_st, factor=st.sampled_from([0.25, 0.5, 2.0, 3.0]))
@settings(max_examples=6, deadline=None)
def test_timescale_maps_times_by_factor(name, factor):
    base, scaled = leaf(name), timescale(leaf(name), factor)
    base_times = [event_time(e) for e in base.events()]
    scaled_times = [event_time(e) for e in scaled.events()]
    assert scaled_times == pytest.approx([t * factor for t in base_times])
    assert scaled.duration == pytest.approx(base.duration * factor)


# -- conservation -------------------------------------------------------------
@given(seed=seed_st)
@settings(max_examples=6, deadline=None)
def test_overlay_and_concat_conserve_events_and_bytes(seed):
    a, b = leaf("flashcrowd", seed), leaf("mlscan", seed + 1)
    sa, sb = a.stats(), b.stats()
    for composed in (
        overlay(leaf("flashcrowd", seed), leaf("mlscan", seed + 1)),
        concat(leaf("flashcrowd", seed), leaf("mlscan", seed + 1)),
    ):
        sc = composed.stats()
        assert sc.events == sa.events + sb.events
        assert sc.jobs == sa.jobs + sb.jobs
        assert sc.bytes_read == sa.bytes_read + sb.bytes_read
        assert sc.bytes_created == sa.bytes_created + sb.bytes_created


# -- numbering / ordering guards ----------------------------------------------
@given(seed=seed_st)
@settings(max_examples=6, deadline=None)
def test_composed_jobs_numbered_sequentially_in_order(seed):
    stream = overlay(leaf("static", seed), leaf("dynamic", seed))
    job_ids = [e.job_id for e in stream.events() if isinstance(e, TraceJob)]
    assert job_ids == list(range(len(job_ids)))
    keys = [event_sort_key(e) for e in stream.events()]
    assert keys == sorted(keys), "composed events must be time-ordered"


def test_composition_does_not_mutate_source_numbering():
    base = leaf("static")
    outer = overlay(base, leaf("dynamic"))
    list(outer.events())
    job_ids = [e.job_id for e in base.events() if isinstance(e, TraceJob)]
    assert job_ids == list(range(len(job_ids)))


# -- windowing ----------------------------------------------------------------
def test_take_and_until_window_the_stream():
    base = overlay(leaf("flashcrowd"), leaf("mlscan"))
    assert sum(1 for _ in take(base, 7).events()) == 7
    bound = base.duration / 3
    clipped = until(base, bound)
    times = [event_time(e) for e in clipped.events()]
    assert times and max(times) <= bound
    assert clipped.duration == pytest.approx(bound)


def test_windowed_composition_is_lazy():
    # A scale-100 overlay holds millions of events; pulling ten must not
    # generate them all (merge admits sources lazily, transforms are
    # per-event).  islice on the raw iterator proves O(window) pulls.
    big = overlay(
        scenario("flashcrowd", seed=1, scale=100.0),
        scenario("oscillating", seed=2, scale=100.0),
    )
    events = list(itertools.islice(big.events(), 10))
    assert len(events) == 10


def test_tenant_tag_prefixes_every_path():
    tagged = tenant_tag(leaf("mlscan"), "/acme")
    for event in tagged.events():
        if isinstance(event, TraceJob):
            assert all(p.startswith("/acme/") for p in event.input_paths)
            assert all(o.path.startswith("/acme/") for o in event.outputs)
        else:
            assert event.path.startswith("/acme/")
    assert tenant_prefixes(tagged.spec) == ["/acme"]


# -- spec canonicalization ----------------------------------------------------
def test_canonical_spec_is_hash_stable():
    verbose = {
        "op": "overlay",
        "isolate": True,
        "sources": [
            {"op": "scenario", "name": "static", "seed": 42, "scale": 1.0,
             "params": {"hot_files": 32}},  # the registered default
            {"op": "timescale", "factor": 1.0,
             "source": {"op": "scenario", "name": "mlscan"}},
        ],
    }
    terse = {
        "op": "overlay",
        "sources": [
            {"op": "scenario", "name": "static"},
            {"op": "scenario", "name": "mlscan"},
        ],
    }
    assert canonical_spec(verbose) == canonical_spec(terse)
    assert spec_hash(verbose) == spec_hash(terse)
    # int/float coercion: 4 and 4.0 describe the same parameter value.
    a = {"op": "scenario", "name": "static", "params": {"hot_files": 4}}
    b = {"op": "scenario", "name": "static", "params": {"hot_files": 4.0}}
    assert spec_hash(a) == spec_hash(b)


def test_parse_spec_accepts_json_text_file_and_frozen_case(tmp_path):
    spec = {"op": "scenario", "name": "static", "seed": 3}
    assert parse_spec(json.dumps(spec)) == canonical_spec(spec)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    assert parse_spec(str(path)) == canonical_spec(spec)
    frozen = tmp_path / "case.json"
    frozen.write_text(json.dumps({"pathology": "churn", "spec": spec}))
    assert parse_spec(str(frozen)) == canonical_spec(spec)


@pytest.mark.parametrize(
    "bad",
    [
        {"op": "nope"},
        {"op": "scenario"},
        {"op": "scenario", "name": "no-such-scenario"},
        {"op": "scenario", "name": "static", "params": {"bogus": 1}},
        {"op": "scenario", "name": "static", "bogus_field": 1},
        {"op": "overlay", "sources": []},
        {"op": "timescale", "source": {"op": "scenario", "name": "static"},
         "factor": 0.0},
        {"op": "tenant_tag", "source": {"op": "scenario", "name": "static"},
         "prefix": "acme/"},
        {"op": "take", "source": {"op": "scenario", "name": "static"},
         "count": 0},
        {"op": "until", "source": {"op": "scenario", "name": "static"},
         "time": -5},
        {"op": "concat", "sources": [{"op": "scenario", "name": "static"}],
         "gap": -1},
    ],
)
def test_malformed_specs_rejected(bad):
    with pytest.raises(ComposeSpecError):
        build_compose(bad)


def test_compose_name_and_prefixes():
    stream = overlay(leaf("flashcrowd"), concat(leaf("static"), leaf("mlscan")))
    assert compose_name(stream.spec) == "overlay(flashcrowd,concat(static,mlscan))"
    assert tenant_prefixes(stream.spec) == ["/t0", "/t1/c0", "/t1/c1"]


# -- deletion-ordering regression (the overlay-isolation bugfix) --------------
def test_merge_and_writer_roundtrip_preserve_deletion_ordering(tmp_path):
    """merge_timed_sources + EventWriter keep FileDeletion order intact.

    Two sources share the namespace ``/shared``: one retires ``/shared/a``
    at t=100, the other re-creates it at t=100.  The merge's (time, kind)
    tie rule forcibly orders the creation *before* the deletion —
    correct for single-stream lifecycles, but it silently inverts an
    intended delete→re-create handoff between independent sources.
    This test pins both halves of the story: the serialization
    round-trip is exactly order-preserving (no reordering hides in the
    writer), and the tie rule is why ``overlay`` namespace-isolates by
    default.
    """
    from repro.workload.serialize import iter_events, save_events

    source_a = [
        FileCreation("/shared/a", 10, 0.0),
        TraceJob(-1, 50.0, ["/shared/a"], 10),
        FileDeletion("/shared/a", 100.0),
    ]
    source_b = [FileCreation("/shared/a", 99, 100.0)]
    merged = list(merge_timed_sources([(0.0, source_a), (0.0, source_b)]))
    kinds = [type(e).__name__ for e in merged]
    # The tie rule puts the re-creation before the deletion: a consumer
    # applying this order drops the *new* file, not the old one.
    assert kinds == ["FileCreation", "TraceJob", "FileCreation", "FileDeletion"]

    path = str(tmp_path / "merged.jsonl")
    save_events(merged, path, name="merged", duration=200.0)
    replayed = list(iter_events(path))
    assert [repr(e) for e in replayed] == [repr(e) for e in merged], (
        "the EventWriter round-trip must preserve event order exactly, "
        "deletions included"
    )


def test_overlay_isolation_prevents_namespace_collisions():
    # Two *identical* pipeline leaves (same seed) delete and re-create
    # the very same paths; without isolation their lifecycles interleave
    # in one namespace and the tie rule rewrites history.  The default
    # overlay keeps every source in its own /t{i} namespace: no shared
    # paths, and each file's deletion stays after its every read.
    a = scenario("pipeline", seed=5, scale=0.5)
    b = scenario("pipeline", seed=5, scale=0.5)
    composed = overlay(a, b)
    paths_by_tenant = {"/t0": set(), "/t1": set()}
    last_read = {}
    deleted_at = {}
    for event in composed.events():
        if isinstance(event, FileCreation):
            prefix = "/t0" if event.path.startswith("/t0/") else "/t1"
            paths_by_tenant[prefix].add(event.path)
        elif isinstance(event, TraceJob):
            for p in event.input_paths:
                last_read[p] = event.submit_time
        else:
            deleted_at[event.path] = event.time
    assert not (paths_by_tenant["/t0"] & paths_by_tenant["/t1"])
    assert deleted_at, "pipeline scenarios must exercise deletions"
    for path, t_delete in deleted_at.items():
        assert last_read.get(path, 0.0) <= t_delete
    # Without isolation the two identical sources do collide — the
    # hazard the default guards against.
    collided = overlay(
        scenario("pipeline", seed=5, scale=0.5),
        scenario("pipeline", seed=5, scale=0.5),
        isolate=False,
    )
    creations = [e.path for e in collided.events() if isinstance(e, FileCreation)]
    assert len(creations) != len(set(creations))


def test_ordering_guard_trips_on_decreasing_times():
    with pytest.raises(StreamOrderError):
        list(
            merge_timed_sources(
                [(100.0, [FileCreation("/x", 1, 50.0)])]
            )
        )
