"""Fast engine mode must reproduce the reference results exactly.

The fast engine (``SystemConfig(engine_mode="fast")``) changes event
storage, pump batching, tick skipping, and solver routing — none of
which may alter a single simulated metric.  These tests run every
registered scenario under both engines and both I/O models and require
identical outcomes, plus targeted checks for the conf routing and the
simulator-core equivalence under randomized schedules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.runner import SystemConfig, WorkloadRunner
from repro.sim.fastsim import FastSimulator
from repro.sim.simulator import Simulator
from repro.workload.scenarios import build_scenario, scenario_names

#: Tiny builds: classic traces (fb/cmu) scale by job count, the
#: generator scenarios by duration.
_SCALE = {"fb": 0.05, "cmu": 0.05}
_DEFAULT_SCALE = 0.1


def _fingerprint(scenario: str, io_model: str, engine: str):
    """Every deterministic outcome of one scenario run."""
    stream = build_scenario(
        scenario, seed=17, scale=_SCALE.get(scenario, _DEFAULT_SCALE)
    )
    config = SystemConfig(
        label=f"{scenario}/{io_model}/{engine}",
        placement="octopus",
        downgrade="lru",
        upgrade="osa",
        io_model=io_model,
        seed=17,
        engine_mode=engine,
    )
    runner = WorkloadRunner(stream, config)
    result = runner.run()
    sim = runner.sim
    # Queue-depth diagnostics (max_heap_size, heap_compactions) are
    # intentionally absent: pump batching queues up to a batch of stream
    # events at once, so heap depth differs between engines even though
    # every simulated outcome matches.
    return {
        "events_processed": sim.events_processed,
        "events_cancelled": sim.events_cancelled,
        "jobs_finished": result.jobs_finished,
        "jobs_submitted": result.jobs_submitted,
        "deletions_applied": result.deletions_applied,
        "hit_ratio": result.metrics.hit_ratio(),
        "byte_hit_ratio": result.metrics.byte_hit_ratio(),
        "task_seconds": result.metrics.total_task_seconds(),
        "transfers_committed": result.transfers_committed,
        "elapsed": result.elapsed,
    }


class TestScenarioEquivalence:
    @pytest.mark.parametrize("scenario", sorted(scenario_names()))
    @pytest.mark.parametrize("io_model", ["snapshot", "fairshare"])
    def test_fast_matches_reference(self, scenario, io_model):
        reference = _fingerprint(scenario, io_model, "reference")
        fast = _fingerprint(scenario, io_model, "fast")
        assert fast == reference

    def test_fast_uses_fast_simulator(self):
        stream = build_scenario("fb", seed=1, scale=0.05)
        fast = WorkloadRunner(stream, SystemConfig(engine_mode="fast"))
        assert isinstance(fast.sim, FastSimulator)
        reference = WorkloadRunner(
            build_scenario("fb", seed=1, scale=0.05), SystemConfig()
        )
        assert not isinstance(reference.sim, FastSimulator)


class TestConfRouting:
    def test_fast_mode_defaults(self):
        conf = SystemConfig(engine_mode="fast").effective_conf()
        assert conf["engine.mode"] == "fast"
        assert conf["io.vector_threshold"] == 128
        assert conf["manager.coarse_ticks"] is True
        assert conf["pump.batch"] == 32

    def test_fast_mode_defaults_overridable(self):
        conf = SystemConfig(
            engine_mode="fast",
            conf={"io.vector_threshold": 16, "pump.batch": 1},
        ).effective_conf()
        assert conf["io.vector_threshold"] == 16
        assert conf["pump.batch"] == 1

    def test_reference_mode_sets_no_fast_keys(self):
        conf = SystemConfig().effective_conf()
        assert conf["engine.mode"] == "reference"
        assert "manager.coarse_ticks" not in conf
        assert "pump.batch" not in conf

    def test_unknown_engine_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown engine_mode"):
            SystemConfig(engine_mode="turbo").effective_conf()

    def test_live_streams_disable_pump_batching(self):
        """Batching would block on next() for live sources."""
        from repro.workload.streams import WorkloadStream

        class FakeLive(WorkloadStream):
            live_stats = object()

            def events(self):
                return iter(())

        runner = WorkloadRunner(FakeLive(), SystemConfig(engine_mode="fast"))
        assert runner._pump_batch == 1

    def test_coarse_ticks_skip_only_in_fast_mode(self):
        results = {}
        for engine in ("reference", "fast"):
            stream = build_scenario("fb", seed=3, scale=0.05)
            config = SystemConfig(
                placement="octopus",
                downgrade="lru",
                upgrade="osa",
                engine_mode=engine,
            )
            runner = WorkloadRunner(stream, config)
            runner.run()
            results[engine] = runner.manager.ticks_skipped
        assert results["reference"] == 0
        assert results["fast"] > 0


class TestSimulatorCoreEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        schedule=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.sampled_from([-1, 0, 1]),
                st.booleans(),  # cancel this event before running?
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_random_schedules_fire_identically(self, schedule):
        logs = {}
        for cls in (Simulator, FastSimulator):
            sim = cls()
            log = logs.setdefault(cls.__name__, [])
            handles = []
            for i, (t, prio, _cancel) in enumerate(schedule):
                handles.append(
                    sim.at(t, lambda i=i: log.append((i, sim.now())), priority=prio)
                )
            for handle, (_t, _prio, cancel) in zip(handles, schedule):
                if cancel:
                    handle.cancel()
            sim.run()
            log.append(
                ("counters", sim.events_processed, sim.events_cancelled, sim.now())
            )
        assert logs["Simulator"] == logs["FastSimulator"]
