"""Tests for gradient boosted trees."""

import numpy as np
import pytest

from repro.ml.gbt import GBTParams, GradientBoostedTrees, sigmoid
from repro.ml.metrics import accuracy, auc


def make_problem(n=600, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 4))
    y = ((X[:, 0] + 0.5 * X[:, 1]) > 0.8).astype(int)
    return X, y


class TestSigmoid:
    def test_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        s = sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        assert np.allclose(s + sigmoid(-x), 1.0)

    def test_extreme_values_stable(self):
        s = sigmoid(np.array([-1000.0, 1000.0]))
        assert s[0] == pytest.approx(0.0)
        assert s[1] == pytest.approx(1.0)


class TestFit:
    def test_learns_separable_problem(self):
        X, y = make_problem()
        model = GradientBoostedTrees(GBTParams(num_rounds=10, max_depth=4)).fit(X, y)
        preds = model.predict(X)
        assert accuracy(y, preds) > 0.95

    def test_probabilities_calibrated_direction(self):
        X, y = make_problem()
        model = GradientBoostedTrees(GBTParams(num_rounds=5, max_depth=3)).fit(X, y)
        probs = model.predict_proba(X)
        assert probs[y == 1].mean() > probs[y == 0].mean()

    def test_refit_replaces_trees(self):
        X, y = make_problem()
        model = GradientBoostedTrees(GBTParams(num_rounds=3, max_depth=3))
        model.fit(X, y)
        model.fit(X, y)
        assert model.num_trees == 3

    def test_label_validation(self):
        model = GradientBoostedTrees()
        with pytest.raises(ValueError):
            model.fit(np.ones((4, 2)), np.array([0, 1, 2, 1]))
        with pytest.raises(ValueError):
            model.fit(np.ones((3, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            model.fit(np.empty((0, 2)), np.empty(0))

    def test_more_rounds_reduce_training_error(self):
        X, y = make_problem(seed=5)
        few = GradientBoostedTrees(GBTParams(num_rounds=1, max_depth=2)).fit(X, y)
        many = GradientBoostedTrees(GBTParams(num_rounds=15, max_depth=2)).fit(X, y)
        assert accuracy(y, many.predict(X)) >= accuracy(y, few.predict(X))


class TestIncremental:
    def test_continuation_improves_on_new_data(self):
        X, y = make_problem(n=2000, seed=1)
        Xtr, ytr = X[:1400], y[:1400]
        Xte, yte = X[1400:], y[1400:]
        model = GradientBoostedTrees(GBTParams(num_rounds=2, max_depth=3))
        model.fit(Xtr[:200], ytr[:200])
        before = auc(yte, model.predict_proba(Xte))
        model.fit_increment(Xtr[200:], ytr[200:], num_rounds=8)
        after = auc(yte, model.predict_proba(Xte))
        assert after >= before
        assert model.num_trees == 10

    def test_increment_on_unfitted_acts_like_fit(self):
        X, y = make_problem()
        model = GradientBoostedTrees(GBTParams(num_rounds=4, max_depth=3))
        model.fit_increment(X, y)
        assert model.is_fitted
        assert model.num_trees == 4

    def test_needs_compaction_flag(self):
        X, y = make_problem(n=200)
        model = GradientBoostedTrees(GBTParams(num_rounds=4, max_depth=2, max_trees=6))
        model.fit(X, y)
        assert not model.needs_compaction
        model.fit_increment(X, y)
        assert model.needs_compaction


class TestPredictApi:
    def test_predict_one_matches_batch(self):
        X, y = make_problem()
        model = GradientBoostedTrees(GBTParams(num_rounds=3, max_depth=3)).fit(X, y)
        assert model.predict_one(X[0]) == pytest.approx(model.predict_proba(X[:1])[0])

    def test_threshold_shifts_labels(self):
        X, y = make_problem()
        model = GradientBoostedTrees(GBTParams(num_rounds=5, max_depth=3)).fit(X, y)
        strict = model.predict(X, threshold=0.9).sum()
        loose = model.predict(X, threshold=0.1).sum()
        assert loose >= strict

    def test_base_score_margin(self):
        model = GradientBoostedTrees(GBTParams(base_score=0.5))
        assert model.base_margin == pytest.approx(0.0)
        skewed = GradientBoostedTrees(GBTParams(base_score=0.9))
        assert skewed.base_margin > 0

    def test_unfitted_predicts_base_score(self):
        model = GradientBoostedTrees(GBTParams(base_score=0.5))
        probs = model.predict_proba(np.ones((3, 2)))
        assert np.allclose(probs, 0.5)

    def test_feature_usage_aggregates(self):
        X, y = make_problem()
        model = GradientBoostedTrees(GBTParams(num_rounds=4, max_depth=3)).fit(X, y)
        usage = model.feature_usage()
        assert len(usage) == X.shape[1]
        assert usage[0] > 0  # dominant feature used

    def test_approx_size_reported(self):
        X, y = make_problem()
        model = GradientBoostedTrees(GBTParams(num_rounds=2, max_depth=2)).fit(X, y)
        assert model.approx_size_bytes() > 0
