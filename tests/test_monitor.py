"""Tests for the Replication Monitor: transfers, accounting, health."""

import pytest

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager
from repro.core.monitor import transfer_seconds
from repro.core.policy import DowngradeAction
from repro.dfs import DFSClient, Master, NodeManager, OctopusPlacementPolicy
from repro.sim import Simulator


@pytest.fixture
def stack():
    sim = Simulator()
    topo = build_local_cluster(num_workers=3, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    master = Master(topo, OctopusPlacementPolicy(topo, nm, Configuration()), sim)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim)
    return sim, master, client, manager


class TestTransferSeconds:
    def test_bottleneck_is_slowest_medium(self):
        fast = transfer_seconds(128 * MB, StorageTier.MEMORY, StorageTier.SSD, False)
        slow = transfer_seconds(128 * MB, StorageTier.MEMORY, StorageTier.HDD, False)
        assert slow > fast

    def test_network_caps_cross_node(self):
        # Memory-to-memory is the only pair faster than the 10GbE network.
        local = transfer_seconds(
            128 * MB, StorageTier.MEMORY, StorageTier.MEMORY, False
        )
        remote = transfer_seconds(
            128 * MB, StorageTier.MEMORY, StorageTier.MEMORY, True
        )
        assert remote > local

    def test_scales_with_size(self):
        small = transfer_seconds(64 * MB, StorageTier.SSD, StorageTier.HDD, False)
        large = transfer_seconds(256 * MB, StorageTier.SSD, StorageTier.HDD, False)
        assert large > 3 * small


class TestDowngradeExecution:
    def test_move_frees_source_tier_after_commit(self, stack):
        sim, master, client, manager = stack
        monitor = manager.monitor
        file = client.create("/f", 128 * MB)
        used_before = master.tier_used(StorageTier.MEMORY)
        scheduled = monitor.submit_downgrade(
            file, StorageTier.MEMORY, DowngradeAction.MOVE
        )
        assert scheduled == 128 * MB
        # In flight: pending accounting active, file excluded.
        assert monitor.pending_out[StorageTier.MEMORY] == 128 * MB
        assert file.inode_id in monitor.in_flight_files()
        sim.run(until=sim.now() + 60)
        assert master.tier_used(StorageTier.MEMORY) == used_before - 128 * MB
        assert monitor.pending_out[StorageTier.MEMORY] == 0
        assert file.inode_id not in monitor.in_flight_files()
        assert monitor.bytes_downgraded[StorageTier.MEMORY] == 128 * MB
        # Replica count preserved: moved, not deleted.
        block = master.blocks.blocks_of(file)[0]
        assert block.replica_count == 3

    def test_delete_action_drops_replica_immediately(self, stack):
        sim, master, client, manager = stack
        monitor = manager.monitor
        file = client.create("/f", 128 * MB)
        scheduled = monitor.submit_downgrade(
            file, StorageTier.MEMORY, DowngradeAction.DELETE
        )
        assert scheduled == 128 * MB
        block = master.blocks.blocks_of(file)[0]
        assert block.replica_count == 2
        assert monitor.bytes_deleted[StorageTier.MEMORY] == 128 * MB

    def test_delete_refused_for_last_replica(self, stack):
        sim, master, client, manager = stack
        monitor = manager.monitor
        file = client.create("/f", 64 * MB, replication=1)
        block = master.blocks.blocks_of(file)[0]
        tier = block.best_tier()
        scheduled = monitor.submit_downgrade(file, tier, DowngradeAction.DELETE)
        assert scheduled == 0
        assert block.replica_count == 1

    def test_file_deleted_mid_transfer_aborts(self, stack):
        sim, master, client, manager = stack
        monitor = manager.monitor
        file = client.create("/f", 128 * MB)
        monitor.submit_downgrade(file, StorageTier.MEMORY, DowngradeAction.MOVE)
        client.delete("/f")
        sim.run(until=sim.now() + 60)
        assert monitor.transfers_aborted == 1
        assert monitor.transfers_committed == 0
        # All space released despite the abort.
        assert sum(d.used for n in master.topology.nodes for d in n.devices()) == 0

    def test_effective_utilization_nets_out_pending(self, stack):
        sim, master, client, manager = stack
        monitor = manager.monitor
        file = client.create("/f", 256 * MB)
        raw = master.tier_utilization(StorageTier.MEMORY)
        monitor.submit_downgrade(file, StorageTier.MEMORY, DowngradeAction.MOVE)
        assert monitor.effective_utilization(StorageTier.MEMORY) < raw


class TestUpgradeExecution:
    def test_moves_lowest_replica_up(self, stack):
        sim, master, client, manager = stack
        monitor = manager.monitor
        file = client.create("/f", 128 * MB)
        block = master.blocks.blocks_of(file)[0]
        # Remove the memory replica so the file's best tier is SSD.
        mem = block.replicas_on_tier(StorageTier.MEMORY)[0]
        master.delete_replica(mem)
        scheduled = monitor.submit_upgrade(file, [StorageTier.MEMORY])
        assert scheduled == 128 * MB
        sim.run(until=sim.now() + 60)
        assert block.replicas_on_tier(StorageTier.MEMORY)
        # The HDD replica (slowest) moved up; SSD one remains.
        assert block.replicas_on_tier(StorageTier.SSD)
        assert not block.replicas_on_tier(StorageTier.HDD)
        assert monitor.bytes_upgraded[StorageTier.MEMORY] == 128 * MB

    def test_skips_blocks_already_at_target(self, stack):
        sim, master, client, manager = stack
        monitor = manager.monitor
        file = client.create("/f", 128 * MB)  # already has a memory replica
        assert monitor.submit_upgrade(file, [StorageTier.MEMORY]) == 0

    def test_falls_through_candidate_tiers(self, stack):
        sim, master, client, manager = stack
        monitor = manager.monitor
        file = client.create("/f", 128 * MB)
        block = master.blocks.blocks_of(file)[0]
        # Strip the block down to HDD-only replicas.
        for tier in (StorageTier.MEMORY, StorageTier.SSD):
            for replica in list(block.replicas_on_tier(tier)):
                master.delete_replica(replica)
        # Fill all memory so only the SSD candidate is feasible.
        for node in master.topology.nodes:
            for device in node.devices(StorageTier.MEMORY):
                if device.free:
                    device.allocate(-9999 - hash(device.device_id) % 100, device.free)
        scheduled = monitor.submit_upgrade(
            file, [StorageTier.MEMORY, StorageTier.SSD]
        )
        assert scheduled == 128 * MB
        sim.run(until=sim.now() + 120)
        assert block.replicas_on_tier(StorageTier.SSD)


class TestHealthScan:
    def make_stack_with_health(self):
        sim = Simulator()
        topo = build_local_cluster(num_workers=4, memory_per_node=1 * GB)
        nm = NodeManager(topo)
        conf = Configuration({"monitor.health_checks_enabled": True})
        master = Master(topo, OctopusPlacementPolicy(topo, nm, conf), sim, conf)
        client = DFSClient(master)
        manager = ReplicationManager(master, sim, conf)
        return sim, master, client, manager

    def test_repairs_under_replicated_block(self):
        sim, master, client, manager = self.make_stack_with_health()
        file = client.create("/f", 128 * MB)
        block = master.blocks.blocks_of(file)[0]
        victim = block.replica_list()[0]
        master.decommission_node(victim.node_id)
        assert block.replica_count == 2
        sim.run(until=sim.now() + 300)
        assert block.replica_count == 3
        assert manager.monitor.replicas_repaired >= 1

    def test_trims_over_replicated_block(self):
        sim, master, client, manager = self.make_stack_with_health()
        file = client.create("/f", 128 * MB)
        block = master.blocks.blocks_of(file)[0]
        target = master.placement.select_copy_target(block, [StorageTier.HDD])
        ticket = master.begin_transfer(block, None, target)
        master.commit_transfer(ticket)
        assert block.replica_count == 4
        sim.run(until=sim.now() + 300)
        assert block.replica_count == 3
        # The slowest extra replica went first: memory copy survives.
        assert block.replicas_on_tier(StorageTier.MEMORY)

    def test_lost_block_not_repairable(self):
        sim, master, client, manager = self.make_stack_with_health()
        file = client.create("/f", 64 * MB, replication=1)
        block = master.blocks.blocks_of(file)[0]
        master.decommission_node(block.replica_list()[0].node_id)
        sim.run(until=sim.now() + 300)
        assert block.replica_count == 0  # nothing to copy from
