"""Tests for LRFU and EXD weight trackers (Formulas 1 and 2)."""

import math

import pytest

from repro.common.units import HOURS
from repro.core.weights import ExdWeights, LrfuWeights
from repro.dfs.namespace import FSDirectory


_FS = FSDirectory()
_COUNTER = [0]


def make_file(path=None):
    # One shared namespace so every file gets a distinct inode id (the
    # weight trackers key by inode id).
    _COUNTER[0] += 1
    path = path or f"/f{_COUNTER[0]}"
    return _FS.create_file(f"{path}.{_COUNTER[0]}", creation_time=0.0)


class TestLrfuWeights:
    def test_initial_weight_is_one(self):
        weights = LrfuWeights(half_life=6 * HOURS)
        file = make_file()
        weights.on_create(file, 0.0)
        assert weights.raw_weight(file) == 1.0

    def test_half_life_semantics(self):
        # Paper example: H=6h, access 6 hours after the last one gives
        # W = 1 + W/2.
        weights = LrfuWeights(half_life=6 * HOURS)
        file = make_file()
        weights.on_create(file, 0.0)
        new = weights.on_access(file, 6 * HOURS)
        assert new == pytest.approx(1.5)

    def test_rapid_accesses_accumulate(self):
        weights = LrfuWeights(half_life=6 * HOURS)
        file = make_file()
        weights.on_create(file, 0.0)
        for i in range(1, 6):
            weights.on_access(file, float(i))
        # Nearly no decay between accesses: W -> ~i+1.
        assert weights.raw_weight(file) > 4.5

    def test_effective_decays_without_access(self):
        weights = LrfuWeights(half_life=1 * HOURS)
        file = make_file()
        weights.on_create(file, 0.0)
        weights.on_access(file, 0.0)
        w_now = weights.effective(file, 0.0)
        w_later = weights.effective(file, 2 * HOURS)
        assert w_later < w_now
        assert weights.effective(file, 1 * HOURS) == pytest.approx(w_now / 2)

    def test_untracked_file_weight_zero(self):
        weights = LrfuWeights()
        assert weights.effective(make_file(), 10.0) == 0.0

    def test_access_without_create_initializes(self):
        weights = LrfuWeights()
        file = make_file()
        weights.on_access(file, 5.0)
        assert weights.raw_weight(file) >= 1.0

    def test_delete_removes_state(self):
        weights = LrfuWeights()
        file = make_file()
        weights.on_create(file, 0.0)
        weights.on_delete(file)
        assert weights.effective(file, 1.0) == 0.0

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            LrfuWeights(half_life=0.0)


class TestExdWeights:
    def test_decay_rate_matches_formula(self):
        alpha = 1.16e-5
        weights = ExdWeights(alpha=alpha)
        file = make_file()
        weights.on_create(file, 0.0)
        elapsed = 1000.0
        new = weights.on_access(file, elapsed)
        assert new == pytest.approx(1.0 + math.exp(-alpha * elapsed))

    def test_default_alpha_one_day_decay(self):
        # 1.16e-5 per second ~= e^-1 over one day (Big SQL's constant).
        weights = ExdWeights()
        file = make_file()
        weights.on_create(file, 0.0)
        weights.on_access(file, 0.0)
        day = 24 * HOURS
        assert weights.effective(file, day) == pytest.approx(
            weights.raw_weight(file) * math.exp(-1.00224), rel=1e-3
        )

    def test_frequent_access_beats_stale(self):
        weights = ExdWeights()
        hot, cold = make_file("/hot"), make_file("/cold")
        for f in (hot, cold):
            weights.on_create(f, 0.0)
        weights.on_access(cold, 0.0)
        for t in (100.0, 200.0, 300.0):
            weights.on_access(hot, t)
        assert weights.effective(hot, 400.0) > weights.effective(cold, 400.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ExdWeights(alpha=-1.0)
