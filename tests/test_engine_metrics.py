"""Tests for the metrics collector and derived figures."""

import pytest

from repro.cluster import StorageTier
from repro.common.units import MB
from repro.engine.metrics import (
    MetricsCollector,
    completion_reduction,
    efficiency_improvement,
)


class TestRecording:
    def test_hit_ratios(self):
        metrics = MetricsCollector()
        metrics.record_task_read("A", StorageTier.MEMORY, 100 * MB)
        metrics.record_task_read("A", StorageTier.HDD, 300 * MB)
        assert metrics.hit_ratio() == pytest.approx(0.5)
        assert metrics.byte_hit_ratio() == pytest.approx(0.25)

    def test_location_ratios(self):
        metrics = MetricsCollector()
        metrics.record_file_access(True, 100 * MB)
        metrics.record_file_access(False, 100 * MB)
        metrics.record_file_access(False, 200 * MB)
        assert metrics.location_hit_ratio() == pytest.approx(1 / 3)
        assert metrics.location_byte_hit_ratio() == pytest.approx(0.25)

    def test_empty_ratios_zero(self):
        metrics = MetricsCollector()
        assert metrics.hit_ratio() == 0.0
        assert metrics.byte_hit_ratio() == 0.0
        assert metrics.location_hit_ratio() == 0.0

    def test_completion_accounting(self):
        metrics = MetricsCollector()
        metrics.record_job_completion("B", 10.0)
        metrics.record_job_completion("B", 30.0)
        assert metrics.bins["B"].mean_completion_time == 20.0
        assert metrics.jobs_completed == 2

    def test_task_time_per_bin(self):
        metrics = MetricsCollector()
        metrics.record_task_time("A", 5.0)
        metrics.record_task_time("F", 7.0)
        assert metrics.total_task_seconds() == 12.0

    def test_tier_access_distribution_normalized(self):
        metrics = MetricsCollector()
        metrics.record_task_read("C", StorageTier.MEMORY, 300 * MB)
        metrics.record_task_read("C", StorageTier.SSD, 100 * MB)
        dist = metrics.tier_access_distribution()
        assert dist["C"][StorageTier.MEMORY] == pytest.approx(0.75)
        assert dist["C"][StorageTier.SSD] == pytest.approx(0.25)
        assert dist["A"][StorageTier.MEMORY] == 0.0


class TestDerivedFigures:
    def baseline_and_candidate(self):
        base = MetricsCollector()
        cand = MetricsCollector()
        for _ in range(4):
            base.record_job_completion("D", 100.0)
            cand.record_job_completion("D", 75.0)
        base.record_task_time("D", 1000.0)
        cand.record_task_time("D", 600.0)
        return base, cand

    def test_completion_reduction(self):
        base, cand = self.baseline_and_candidate()
        assert completion_reduction(base, cand)["D"] == pytest.approx(25.0)

    def test_efficiency_improvement(self):
        base, cand = self.baseline_and_candidate()
        assert efficiency_improvement(base, cand)["D"] == pytest.approx(40.0)

    def test_zero_baseline_guarded(self):
        base, cand = MetricsCollector(), MetricsCollector()
        assert completion_reduction(base, cand)["A"] == 0.0
        assert efficiency_improvement(base, cand)["A"] == 0.0

    def test_regression_shows_negative(self):
        base = MetricsCollector()
        cand = MetricsCollector()
        base.record_job_completion("E", 50.0)
        cand.record_job_completion("E", 100.0)
        assert completion_reduction(base, cand)["E"] == pytest.approx(-100.0)
