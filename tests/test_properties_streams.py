"""Property-based tests (hypothesis) for the streaming workload generators.

Four invariants every scenario must satisfy regardless of seed, scale,
or parameter overrides:

* **determinism** — the event sequence is a pure function of
  (name, seed, scale, params), and re-iterating one stream object
  reproduces it exactly;
* **time order** — event times are non-decreasing under the
  (time, kind) tie rule;
* **conservation** — a job's ``input_size`` equals the sum of the sizes
  its input files were created (or written) with: bytes are neither
  invented nor lost between creation and read;
* **registry round-trip** — going through the registry by name with
  explicit params rebuilds the identical stream.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.jobs import FileCreation, TraceJob, event_sort_key
from repro.workload.scenarios import SCENARIOS, build_scenario
from repro.workload.streams import WorkloadStream

#: The pure generators (classic fb/cmu compat is covered deterministically
#: in test_scenarios.py; synthesizing it per hypothesis example is slow).
GENERATED = ["diurnal", "flashcrowd", "mlscan", "oscillating", "pipeline"]

scenario_names_st = st.sampled_from(GENERATED)
seeds_st = st.integers(min_value=0, max_value=2**31 - 1)
scales_st = st.floats(min_value=0.05, max_value=0.25)


def signature(stream: WorkloadStream):
    return [repr(event) for event in stream.events()]


@given(name=scenario_names_st, seed=seeds_st, scale=scales_st)
@settings(max_examples=15, deadline=None)
def test_streams_are_deterministic_under_seed(name, seed, scale):
    stream = build_scenario(name, seed=seed, scale=scale)
    rebuilt = build_scenario(name, seed=seed, scale=scale)
    first = signature(stream)
    assert first == signature(stream), "re-iteration must reproduce the stream"
    assert first == signature(rebuilt), "same seed must rebuild the stream"


@given(name=scenario_names_st, seed=seeds_st)
@settings(max_examples=10, deadline=None)
def test_different_seeds_decorrelate(name, seed):
    a = signature(build_scenario(name, seed=seed, scale=0.1))
    b = signature(build_scenario(name, seed=seed + 1, scale=0.1))
    assert a != b


@given(name=scenario_names_st, seed=seeds_st, scale=scales_st)
@settings(max_examples=15, deadline=None)
def test_event_times_non_decreasing(name, seed, scale):
    stream = build_scenario(name, seed=seed, scale=scale)
    keys = [event_sort_key(event) for event in stream.events()]
    assert keys == sorted(keys)
    assert keys, "streams must not be empty"
    assert keys[-1][0] <= stream.duration


@given(name=scenario_names_st, seed=seeds_st, scale=scales_st)
@settings(max_examples=15, deadline=None)
def test_job_bytes_conserved(name, seed, scale):
    stream = build_scenario(name, seed=seed, scale=scale)
    sizes = {}
    for event in stream.events():
        if isinstance(event, FileCreation):
            sizes[event.path] = event.size
        elif isinstance(event, TraceJob):
            assert len(set(event.input_paths)) == len(event.input_paths)
            assert event.input_size == sum(sizes[path] for path in event.input_paths)
            assert event.input_size > 0
            for output in event.outputs:
                sizes[output.path] = output.size


@given(name=scenario_names_st, seed=seeds_st, data=st.data())
@settings(max_examples=15, deadline=None)
def test_registry_round_trip(name, seed, data):
    """scenario name → params → the same stream, bit for bit."""
    defaults = SCENARIOS[name].defaults
    key = data.draw(st.sampled_from(sorted(defaults)))
    factor = data.draw(st.sampled_from([0.5, 1.0, 2.0]))
    params = {key: defaults[key] * factor}
    a = build_scenario(name, seed=seed, scale=0.08, **params)
    b = build_scenario(name, seed=seed, scale=0.08, **params)
    assert signature(a) == signature(b)
