"""Tests keeping the docs site buildable and reference-clean in tier-1."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
TOOLS = REPO_ROOT / "tools"


def load_tool(name):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gen_api():
    return load_tool("gen_api")


class TestDocsTree:
    @pytest.mark.parametrize(
        "name",
        ["architecture.md", "stream-protocol.md", "scenarios.md", "benchmarks.md"],
    )
    def test_doc_exists_and_is_substantial(self, name):
        path = DOCS / name
        assert path.exists(), f"docs/{name} missing"
        assert len(path.read_text()) > 1000

    def test_readme_links_docs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for name in ("architecture.md", "stream-protocol.md", "scenarios.md"):
            assert f"docs/{name}" in readme

    def test_scenarios_doc_covers_registry(self):
        from repro.workload.scenarios import scenario_names

        text = (DOCS / "scenarios.md").read_text()
        for name in scenario_names():
            assert f"`{name}`" in text, f"scenario {name} undocumented"

    def test_scenarios_doc_covers_presets(self):
        from repro.core.presets import preset_names

        text = (DOCS / "scenarios.md").read_text()
        for name in preset_names():
            assert name in text


class TestApiReference:
    def test_build_and_crossref_check(self, gen_api, tmp_path):
        # The CI docs job, in miniature: full build into a tmp dir plus
        # the cross-reference and markdown-link checks, all must pass.
        assert gen_api.main(["--out", str(tmp_path), "--check"]) == 0
        index = tmp_path / "index.md"
        assert index.exists()
        assert "`repro.workload.live`" in index.read_text()
        assert (tmp_path / "repro.workload.streams.md").exists()

    def test_broken_reference_detected(self, gen_api):
        assert not gen_api._resolve("repro.workload.NoSuchThing", "repro.workload")
        assert gen_api._resolve(
            "~repro.workload.streams.WorkloadStream", "repro.workload.live"
        )
        assert gen_api._resolve("events", "repro.workload.streams")

    def test_broken_markdown_link_detected(self, gen_api, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [here](missing-file.md) and [ok](page.md)")
        errors = gen_api.check_markdown_links([page])
        assert len(errors) == 1
        assert "missing-file.md" in errors[0]


class TestDocstringCoverage:
    def test_gate_passes_at_ratchet(self, capsys):
        check = load_tool("check_docstrings")
        assert check.main([]) == 0
        out = capsys.readouterr().out
        assert "docstring coverage: passed" in out

    def test_gate_fails_above_current_coverage(self, capsys):
        check = load_tool("check_docstrings")
        assert check.main(["--min-coverage", "100"]) == 1
