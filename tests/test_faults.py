"""Tests for node failure injection and replication repair."""

import pytest

from repro.cluster import build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager
from repro.dfs import (
    DFSClient,
    FaultInjector,
    Master,
    NodeManager,
)
from repro.dfs.placement import HdfsPlacementPolicy
from repro.sim import Simulator


@pytest.fixture
def stack():
    sim = Simulator()
    topo = build_local_cluster(num_workers=5, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    conf = Configuration({"monitor.health_checks_enabled": True})
    master = Master(topo, HdfsPlacementPolicy(topo, nm, conf), sim, conf)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim, conf)
    injector = FaultInjector(sim, master)
    return sim, master, client, manager, injector


class TestFailure:
    def test_fail_drops_replicas_and_marks_dead(self, stack):
        sim, master, client, manager, injector = stack
        client.create("/f", 128 * MB)
        victim = master.blocks.blocks_of(master.get_file("/f"))[0].nodes()[0]
        event = injector.fail(victim)
        assert event.replicas_lost >= 1
        assert not master.topology.node(victim).alive
        block = master.blocks.blocks_of(master.get_file("/f"))[0]
        assert victim not in block.nodes()

    def test_double_fail_rejected(self, stack):
        sim, master, client, manager, injector = stack
        injector.fail("worker001")
        with pytest.raises(ValueError):
            injector.fail("worker001")

    def test_recover_requires_down_node(self, stack):
        _, _, _, _, injector = stack
        with pytest.raises(ValueError):
            injector.recover("worker001")

    def test_dead_node_excluded_from_placement(self, stack):
        sim, master, client, manager, injector = stack
        injector.fail("worker001")
        client.create("/g", 256 * MB)
        for block in master.blocks.blocks_of(master.get_file("/g")):
            assert "worker001" not in block.nodes()

    def test_recovered_node_placeable_again(self, stack):
        sim, master, client, manager, injector = stack
        injector.fail("worker001")
        injector.recover("worker001")
        assert master.topology.node("worker001").alive
        # With 5 workers and replication 3, enough creations eventually
        # land on the recovered (emptiest) node.
        for i in range(6):
            client.create(f"/r{i}", 128 * MB)
        used = master.topology.node("worker001").total_used()
        assert used > 0

    def test_data_loss_counted_when_all_replicas_die(self, stack):
        sim, master, client, manager, injector = stack
        client.create("/f", 128 * MB, replication=1)
        block = master.blocks.blocks_of(master.get_file("/f"))[0]
        holder = block.nodes()[0]
        event = injector.fail(holder)
        assert event.blocks_lost >= 1
        assert injector.stats.blocks_lost >= 1


class TestRepair:
    def test_health_scan_restores_replication(self, stack):
        sim, master, client, manager, injector = stack
        client.create("/f", 128 * MB)
        file = master.get_file("/f")
        victim = master.blocks.blocks_of(file)[0].nodes()[0]
        injector.fail(victim)
        assert injector.under_replicated_blocks() >= 1
        # Health checks run every 30s; give a few rounds plus transfers.
        sim.run(until=sim.now() + 300)
        assert injector.under_replicated_blocks() == 0
        assert manager.monitor.replicas_repaired >= 1
        for block in master.blocks.blocks_of(file):
            assert block.replica_count == file.replication

    def test_repair_avoids_dead_nodes(self, stack):
        sim, master, client, manager, injector = stack
        client.create("/f", 128 * MB)
        file = master.get_file("/f")
        victim = master.blocks.blocks_of(file)[0].nodes()[0]
        injector.fail(victim)
        sim.run(until=sim.now() + 300)
        for block in master.blocks.blocks_of(file):
            assert victim not in block.nodes()

    def test_outage_fail_and_recover_scheduled(self, stack):
        sim, master, client, manager, injector = stack
        client.create("/f", 128 * MB)
        injector.outage("worker002", start=10.0, downtime=60.0)
        sim.run(until=9.0)
        assert master.topology.node("worker002").alive
        sim.run(until=30.0)
        assert not master.topology.node("worker002").alive
        sim.run(until=100.0)
        assert master.topology.node("worker002").alive
        assert injector.stats.failures == 1
        assert injector.stats.recoveries == 1


class TestRandomOutages:
    def test_schedule_random_outages(self, stack):
        sim, master, client, manager, injector = stack
        chosen = injector.schedule_random_outages(
            count=2, start=5.0, end=50.0, downtime=20.0, seed=3
        )
        assert len(set(chosen)) == 2
        sim.run(until=200.0)
        assert injector.stats.failures == 2
        assert injector.stats.recoveries == 2
        assert all(n.alive for n in master.topology.nodes)

    def test_too_many_failures_rejected(self, stack):
        _, _, _, _, injector = stack
        with pytest.raises(ValueError):
            injector.schedule_random_outages(
                count=99, start=0.0, end=10.0, downtime=5.0
            )

    def test_deterministic_with_seed(self, stack):
        sim, master, client, manager, injector = stack
        a = FaultInjector(sim, master).schedule_random_outages(
            2, 1000.0, 2000.0, 10.0, seed=5
        )
        b = FaultInjector(sim, master).schedule_random_outages(
            2, 3000.0, 4000.0, 10.0, seed=5
        )
        assert a == b


class TestSchedulerIntegration:
    def test_dead_node_gets_no_tasks(self):
        from repro.engine.runner import SystemConfig, WorkloadRunner
        from repro.workload.profiles import PROFILES, scaled_profile
        from repro.workload.synthesis import synthesize_trace

        trace = synthesize_trace(
            scaled_profile(PROFILES["FB"], 0.03), seed=5
        )
        runner = WorkloadRunner(trace, SystemConfig(workers=5))
        injector = FaultInjector(runner.sim, runner.master, runner.scheduler)
        injector.fail("worker001")
        assert runner.scheduler.free_slots("worker001") == 0
        result = runner.run()
        assert result.jobs_finished > 0
        injector.recover("worker001")
        assert runner.scheduler.free_slots("worker001") > 0
