"""Tests for per-node I/O statistics."""

import pytest

from repro.cluster import StorageTier, build_local_cluster
from repro.common.units import MB
from repro.dfs.node_manager import NodeManager


@pytest.fixture
def manager():
    return NodeManager(build_local_cluster(num_workers=3))


def node_id(manager, index=0):
    return manager.topology.nodes[index].node_id


class TestCounters:
    def test_read_write_accounting(self, manager):
        n = node_id(manager)
        manager.record_read(n, StorageTier.MEMORY, 10 * MB)
        manager.record_write(n, StorageTier.HDD, 20 * MB)
        stats = manager.stats(n)
        assert stats.bytes_read[StorageTier.MEMORY] == 10 * MB
        assert stats.bytes_written[StorageTier.HDD] == 20 * MB
        assert stats.total_bytes_read == 10 * MB
        assert stats.total_bytes_written == 20 * MB

    def test_cluster_aggregates(self, manager):
        manager.record_read(node_id(manager, 0), StorageTier.SSD, 5 * MB)
        manager.record_read(node_id(manager, 1), StorageTier.SSD, 7 * MB)
        assert manager.cluster_bytes_read(StorageTier.SSD) == 12 * MB
        assert manager.cluster_bytes_written(StorageTier.SSD) == 0


class TestTransfers:
    def test_active_transfer_lifecycle(self, manager):
        n = node_id(manager)
        manager.transfer_started(n)
        manager.transfer_started(n)
        assert manager.stats(n).active_transfers == 2
        assert manager.stats(n).total_transfers == 2
        manager.transfer_finished(n)
        assert manager.stats(n).active_transfers == 1

    def test_underflow_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.transfer_finished(node_id(manager))

    def test_load_score_monotone(self, manager):
        n = node_id(manager)
        idle = manager.load_score(n)
        manager.transfer_started(n)
        busy = manager.load_score(n)
        assert idle == 0.0
        assert 0.0 < busy < 1.0

    def test_least_loaded(self, manager):
        a, b = node_id(manager, 0), node_id(manager, 1)
        manager.transfer_started(a)
        assert manager.least_loaded([a, b]) == b

    def test_least_loaded_empty_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.least_loaded([])
