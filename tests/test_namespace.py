"""Tests for the hierarchical namespace (FS directory)."""

import pytest

from repro.common.errors import FileAlreadyExistsError, InvalidPathError
from repro.dfs.namespace import (
    FSDirectory,
    basename,
    normalize_path,
    parent_path,
    split_path,
)


class TestPathHelpers:
    def test_normalize(self):
        assert normalize_path("/a/b/") == "/a/b"
        assert normalize_path("/a//b") == "/a/b"
        assert normalize_path("/") == "/"

    def test_relative_rejected(self):
        with pytest.raises(InvalidPathError):
            normalize_path("a/b")
        with pytest.raises(InvalidPathError):
            normalize_path("/a/../b")
        with pytest.raises(InvalidPathError):
            normalize_path("")

    def test_split_and_parent(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert parent_path("/a/b/c") == "/a/b"
        assert parent_path("/a") == "/"
        assert parent_path("/") == "/"
        assert basename("/a/b") == "b"


class TestFSDirectory:
    def test_create_file_makes_parents(self):
        fs = FSDirectory()
        file = fs.create_file("/data/x/file.bin", creation_time=1.0, size=10)
        assert file.path == "/data/x/file.bin"
        assert fs.get_directory("/data/x").is_directory
        assert fs.get_file("/data/x/file.bin").size == 10

    def test_duplicate_create_rejected(self):
        fs = FSDirectory()
        fs.create_file("/a", creation_time=0.0)
        with pytest.raises(FileAlreadyExistsError):
            fs.create_file("/a", creation_time=1.0)

    def test_mkdirs_idempotent(self):
        fs = FSDirectory()
        d1 = fs.mkdirs("/x/y")
        d2 = fs.mkdirs("/x/y")
        assert d1 is d2

    def test_mkdirs_over_file_rejected(self):
        fs = FSDirectory()
        fs.create_file("/x", creation_time=0.0)
        with pytest.raises(InvalidPathError):
            fs.mkdirs("/x/y")

    def test_get_missing_returns_none(self):
        fs = FSDirectory()
        assert fs.get("/nope") is None
        assert not fs.exists("/nope")

    def test_get_file_type_errors(self):
        fs = FSDirectory()
        fs.mkdirs("/d")
        with pytest.raises(InvalidPathError):
            fs.get_file("/d")
        fs.create_file("/f", creation_time=0.0)
        with pytest.raises(InvalidPathError):
            fs.get_directory("/f")

    def test_delete_file(self):
        fs = FSDirectory()
        fs.create_file("/a/b", creation_time=0.0)
        fs.delete("/a/b")
        assert not fs.exists("/a/b")
        assert fs.exists("/a")

    def test_delete_non_empty_dir_requires_recursive(self):
        fs = FSDirectory()
        fs.create_file("/a/b", creation_time=0.0)
        with pytest.raises(InvalidPathError):
            fs.delete("/a")
        fs.delete("/a", recursive=True)
        assert not fs.exists("/a")

    def test_delete_root_rejected(self):
        with pytest.raises(InvalidPathError):
            FSDirectory().delete("/")

    def test_rename_moves_subtree(self):
        fs = FSDirectory()
        fs.create_file("/a/b/c", creation_time=0.0)
        fs.rename("/a/b", "/z/w")
        assert fs.exists("/z/w/c")
        assert not fs.exists("/a/b")
        assert fs.get_file("/z/w/c").path == "/z/w/c"

    def test_rename_into_self_rejected(self):
        fs = FSDirectory()
        fs.mkdirs("/a/b")
        with pytest.raises(InvalidPathError):
            fs.rename("/a", "/a/b/c")

    def test_rename_to_existing_rejected(self):
        fs = FSDirectory()
        fs.create_file("/a", creation_time=0.0)
        fs.create_file("/b", creation_time=0.0)
        with pytest.raises(FileAlreadyExistsError):
            fs.rename("/a", "/b")

    def test_list_dir_sorted(self):
        fs = FSDirectory()
        for name in ("zeta", "alpha", "mid"):
            fs.create_file(f"/d/{name}", creation_time=0.0)
        names = [n.name for n in fs.list_dir("/d")]
        assert names == ["alpha", "mid", "zeta"]

    def test_iter_files_depth_first(self):
        fs = FSDirectory()
        fs.create_file("/a/1", creation_time=0.0)
        fs.create_file("/a/sub/2", creation_time=0.0)
        fs.create_file("/b/3", creation_time=0.0)
        paths = [f.path for f in fs.iter_files()]
        assert set(paths) == {"/a/1", "/a/sub/2", "/b/3"}
        assert fs.file_count() == 3

    def test_inode_ids_unique(self):
        fs = FSDirectory()
        a = fs.create_file("/a", creation_time=0.0)
        b = fs.create_file("/b", creation_time=0.0)
        assert a.inode_id != b.inode_id

    def test_replication_validation(self):
        fs = FSDirectory()
        with pytest.raises(InvalidPathError):
            fs.create_file("/x", creation_time=0.0, replication=0)
        with pytest.raises(InvalidPathError):
            fs.create_file("/y", creation_time=0.0, size=-1)
