"""Property and unit tests for the fair-share flow engine."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.flows import (
    FairShareEngine,
    Flow,
    Resource,
    compute_max_min_rates,
    compute_max_min_rates_reference,
    compute_max_min_rates_vectorized,
)
from repro.sim.simulator import Simulator


def make_scenario(seed: int, num_resources: int, num_flows: int):
    """A random solver scenario: flows over a shared resource pool."""
    rng = random.Random(seed)
    resources = [
        Resource(f"r{i}", rng.uniform(10.0, 2000.0)) for i in range(num_resources)
    ]
    flows = []
    for i in range(num_flows):
        count = rng.randint(1, min(4, num_resources))
        picked = rng.sample(resources, count)
        links = [(r, rng.choice([1.0, 1.5, 2.0, 0.5])) for r in picked]
        flows.append(Flow(i + 1, 1000.0, links, lambda: None, name=f"f{i}"))
    return resources, flows


class TestSolverProperties:
    """Invariants of compute_max_min_rates over randomized graphs."""

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_resources=st.integers(min_value=1, max_value=8),
        num_flows=st.integers(min_value=1, max_value=25),
    )
    def test_rates_never_exceed_capacity(self, seed, num_resources, num_flows):
        resources, flows = make_scenario(seed, num_resources, num_flows)
        rates = compute_max_min_rates(flows)
        for resource in resources:
            demand = sum(
                rates[f] * w for f in flows for r, w in f.links if r is resource
            )
            assert demand <= resource.capacity * (1 + 1e-6)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_resources=st.integers(min_value=1, max_value=8),
        num_flows=st.integers(min_value=1, max_value=25),
    )
    def test_allocation_is_work_conserving(self, seed, num_resources, num_flows):
        """Every flow is bottlenecked by at least one saturated resource.

        If no resource along a flow's path were saturated, its rate
        could be raised without hurting anyone — the allocation would
        not be max-min.
        """
        resources, flows = make_scenario(seed, num_resources, num_flows)
        rates = compute_max_min_rates(flows)
        demand = {
            r: sum(rates[f] * w for f in flows for rr, w in f.links if rr is r)
            for r in resources
        }
        for flow in flows:
            assert any(
                demand[r] >= r.capacity * (1 - 1e-6) for r, _ in flow.links
            ), f"flow {flow.name} has slack on every resource"

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_resources=st.integers(min_value=1, max_value=6),
        num_flows=st.integers(min_value=1, max_value=15),
    )
    def test_rates_positive(self, seed, num_resources, num_flows):
        _, flows = make_scenario(seed, num_resources, num_flows)
        rates = compute_max_min_rates(flows)
        assert all(rates[f] > 0 for f in flows)

    def test_deterministic_rates(self):
        for seed in range(25):
            _, flows_a = make_scenario(seed, 5, 12)
            _, flows_b = make_scenario(seed, 5, 12)
            rates_a = compute_max_min_rates(flows_a)
            rates_b = compute_max_min_rates(flows_b)
            assert [rates_a[f] for f in flows_a] == [rates_b[f] for f in flows_b]


class TestSolverEquivalence:
    """The production solvers against the from-scratch reference."""

    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        num_resources=st.integers(min_value=1, max_value=10),
        num_flows=st.integers(min_value=1, max_value=60),
    )
    def test_incremental_solver_matches_reference_exactly(
        self, seed, num_resources, num_flows
    ):
        """The dirty-set solver is the reference, arithmetic included:
        rates must be equal bit for bit, not just approximately."""
        _, flows = make_scenario(seed, num_resources, num_flows)
        fast = compute_max_min_rates(flows)
        oracle = compute_max_min_rates_reference(flows)
        assert all(fast[f] == oracle[f] for f in flows)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        num_resources=st.integers(min_value=1, max_value=8),
        num_flows=st.integers(min_value=1, max_value=50),
    )
    def test_vectorized_solver_matches_reference(
        self, seed, num_resources, num_flows
    ):
        """The numpy filling agrees with the reference up to float noise
        and preserves the max-min structure (capacity + bottleneck)."""
        resources, flows = make_scenario(seed, num_resources, num_flows)
        fast = compute_max_min_rates_vectorized(flows)
        oracle = compute_max_min_rates_reference(flows)
        for f in flows:
            assert fast[f] == pytest.approx(oracle[f], rel=1e-6)
        for resource in resources:
            demand = sum(
                fast[f] * w for f in flows for r, w in f.links if r is resource
            )
            assert demand <= resource.capacity * (1 + 1e-6)

    def test_vectorized_handles_duplicate_links(self):
        # Two links to the same resource: weights add, matching the
        # reference's per-link summation.
        r = Resource("dev", 100.0)
        flow = Flow(1, 1000, [(r, 1.0), (r, 1.0)], lambda: None)
        assert flow.dup_links
        fast = compute_max_min_rates_vectorized([flow])
        oracle = compute_max_min_rates_reference([flow])
        assert fast[flow] == pytest.approx(oracle[flow])
        assert oracle[flow] == pytest.approx(50.0)
        assert compute_max_min_rates([flow])[flow] == oracle[flow]

    def test_empty_all_solvers(self):
        assert compute_max_min_rates([]) == {}
        assert compute_max_min_rates_reference([]) == {}
        assert compute_max_min_rates_vectorized([]) == {}


class _BruteForceEngine(FairShareEngine):
    """The pre-registry engine: scans every active flow to find the
    component (historical multi-pass sweep) and re-solves it with the
    from-scratch reference solver.  The production engine must be an
    exact behavioural replacement for this."""

    def _component_of(self, seed):
        resources = {r.name for r, _ in seed.links}
        component = []
        candidates = list(self._flows.values())
        grew = True
        while grew:
            grew = False
            rest = []
            for flow in candidates:
                if any(r.name in resources for r, _ in flow.links):
                    component.append(flow)
                    for r, _ in flow.links:
                        if r.name not in resources:
                            resources.add(r.name)
                            grew = True
                else:
                    rest.append(flow)
            candidates = rest
        return component

    def _solve(self, flows):
        return compute_max_min_rates_reference(flows)

    def _recompute(self, seed):  # disable the fast paths too
        now = self.sim.now()
        self.recomputes += 1
        flows = self._component_of(seed)
        for flow in flows:
            elapsed = now - flow.last_update
            if elapsed > 0.0 and flow.rate > 0.0:
                flow.bytes_remaining = max(
                    0.0, flow.bytes_remaining - flow.rate * elapsed
                )
            flow.last_update = now
        rates = self._solve(flows)
        for flow in flows:
            rate = rates[flow]
            flow.rate = rate
            finish_at = now + flow.bytes_remaining / rate
            if flow.event is not None and not flow.event.cancelled:
                slack = 1e-9 * max(1.0, finish_at - now)
                if abs(flow.event.time - finish_at) <= slack:
                    continue
                flow.event.cancel()
            flow.event = self.sim.at(
                finish_at, lambda f=flow: self._finish(f), name="flow"
            )


def _replay_random_scenario(engine_cls, seed: int):
    """Drive an engine through a random submit schedule; return the
    completion log [(time, tag), ...]."""
    rng = random.Random(seed)
    sim = Simulator()
    engine = engine_cls(sim)
    resources = [
        Resource(f"r{i}", rng.uniform(50.0, 500.0)) for i in range(6)
    ]
    log = []
    for i in range(60):
        links = [
            (r, rng.choice([1.0, 1.5, 2.0]))
            for r in rng.sample(resources, rng.randint(1, 3))
        ]
        size = rng.uniform(100.0, 5000.0)
        latency = rng.choice([0.0, 0.0, rng.uniform(0.01, 1.0)])
        start = rng.uniform(0.0, 30.0)
        sim.at(
            start,
            lambda s=size, ln=links, la=latency, i=i: engine.submit(
                s, ln, lambda t=i: log.append((sim.now(), t)), latency=la
            ),
        )
    sim.run()
    assert engine.active_flows == 0
    return log


class TestEngineIncrementalEquivalence:
    """Registry walk + dirty-component solve + fast paths must replay
    random flow graphs bit-identically to the brute-force engine."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_completion_log_identical_to_brute_force(self, seed):
        fast = _replay_random_scenario(FairShareEngine, seed)
        brute = _replay_random_scenario(_BruteForceEngine, seed)
        assert fast == brute  # same completion times AND order, exactly

    def test_forced_vectorized_engine_is_deterministic(self):
        class VectorEngine(FairShareEngine):
            vector_threshold = 0  # vectorize every component

        for seed in range(5):
            a = _replay_random_scenario(VectorEngine, seed)
            b = _replay_random_scenario(VectorEngine, seed)
            assert a == b
            # Same completion set as the scalar engine, times equal up
            # to float noise between the two summation orders.
            scalar = _replay_random_scenario(FairShareEngine, seed)
            assert [tag for _, tag in sorted(a, key=lambda e: e[1])] == [
                tag for _, tag in sorted(scalar, key=lambda e: e[1])
            ]
            for (ta, _), (ts, _) in zip(
                sorted(a, key=lambda e: e[1]), sorted(scalar, key=lambda e: e[1])
            ):
                assert ta == pytest.approx(ts, rel=1e-6)


class TestSolverExamples:
    """Hand-checkable allocations."""

    def test_equal_split_single_resource(self):
        r = Resource("dev", 100.0)
        flows = [Flow(i, 1000, [(r, 1.0)], lambda: None) for i in range(4)]
        rates = compute_max_min_rates(flows)
        assert all(rate == pytest.approx(25.0) for rate in rates.values())

    def test_weighted_write_consumes_more(self):
        # capacity 100 (read); a write with weight 2 (write_bw = 50).
        r = Resource("dev", 100.0)
        read = Flow(1, 1000, [(r, 1.0)], lambda: None)
        write = Flow(2, 1000, [(r, 2.0)], lambda: None)
        rates = compute_max_min_rates([read, write])
        # Progressive filling: both freeze when 1*x + 2*x = 100.
        assert rates[read] == pytest.approx(100.0 / 3)
        assert rates[write] == pytest.approx(100.0 / 3)

    def test_unbottlenecked_flow_takes_leftover(self):
        narrow = Resource("narrow", 10.0)
        wide = Resource("wide", 100.0)
        constrained = Flow(1, 1000, [(narrow, 1.0), (wide, 1.0)], lambda: None)
        free = Flow(2, 1000, [(wide, 1.0)], lambda: None)
        rates = compute_max_min_rates([constrained, free])
        assert rates[constrained] == pytest.approx(10.0)
        assert rates[free] == pytest.approx(90.0)

    def test_empty(self):
        assert compute_max_min_rates([]) == {}


class TestFairShareEngine:
    """Event-driven behaviour: re-pricing and rescheduling."""

    def test_single_flow_runs_at_full_rate(self):
        sim = Simulator()
        engine = FairShareEngine(sim)
        r = Resource("dev", 100.0)
        done = []
        engine.submit(1000.0, [(r, 1.0)], lambda: done.append(sim.now()))
        sim.run()
        assert done == [pytest.approx(10.0)]

    def test_joining_flow_slows_the_first(self):
        """A flow that starts alone must NOT keep its initial price.

        First flow: 1000 bytes at 100 B/s.  At t=5 a second identical
        flow joins; both then run at 50 B/s.  First finishes at
        5 + 500/50 = 15 (snapshot pricing would have said 10).
        """
        sim = Simulator()
        engine = FairShareEngine(sim)
        r = Resource("dev", 100.0)
        done = {}
        engine.submit(1000.0, [(r, 1.0)], lambda: done.setdefault("a", sim.now()))
        sim.at(5.0, lambda: engine.submit(
            1000.0, [(r, 1.0)], lambda: done.setdefault("b", sim.now())
        ))
        sim.run()
        assert done["a"] == pytest.approx(15.0)
        # b: 500 bytes at 50 B/s until t=15, then 500 at 100 B/s -> t=20.
        assert done["b"] == pytest.approx(20.0)
        assert engine.active_flows == 0

    def test_completion_speeds_up_survivors(self):
        sim = Simulator()
        engine = FairShareEngine(sim)
        r = Resource("dev", 100.0)
        done = {}
        engine.submit(500.0, [(r, 1.0)], lambda: done.setdefault("small", sim.now()))
        engine.submit(1500.0, [(r, 1.0)], lambda: done.setdefault("big", sim.now()))
        sim.run()
        # Both at 50 B/s; small done at t=10.  Big then has 1000 bytes
        # left at 100 B/s -> t=20 (not the 30 its start price implied).
        assert done["small"] == pytest.approx(10.0)
        assert done["big"] == pytest.approx(20.0)

    def test_latency_defers_contention(self):
        sim = Simulator()
        engine = FairShareEngine(sim)
        r = Resource("dev", 100.0)
        done = []
        engine.submit(1000.0, [(r, 1.0)], lambda: done.append(sim.now()), latency=2.0)
        assert engine.active_flows == 0  # still seeking
        sim.run()
        assert done == [pytest.approx(12.0)]

    def test_zero_byte_flow_completes_after_latency(self):
        sim = Simulator()
        engine = FairShareEngine(sim)
        r = Resource("dev", 100.0)
        done = []
        engine.submit(0.0, [(r, 1.0)], lambda: done.append(sim.now()), latency=0.5)
        sim.run()
        assert done == [pytest.approx(0.5)]
        assert engine.active_flows == 0

    def test_completion_order_deterministic_under_seed(self):
        def run_once(seed: int):
            sim = Simulator()
            engine = FairShareEngine(sim)
            rng = random.Random(seed)
            resources = [Resource(f"r{i}", rng.uniform(50, 500)) for i in range(4)]
            order = []
            for i in range(30):
                links = [
                    (r, rng.choice([1.0, 2.0]))
                    for r in rng.sample(resources, rng.randint(1, 3))
                ]
                size = rng.uniform(100, 5000)
                start = rng.uniform(0, 20)
                sim.at(
                    start,
                    lambda s=size, ln=links, i=i: engine.submit(
                        s, ln, lambda i=i: order.append(i)
                    ),
                )
            sim.run()
            assert engine.active_flows == 0
            return order

        for seed in range(10):
            assert run_once(seed) == run_once(seed)

    def test_contention_stats_accumulate(self):
        sim = Simulator()
        engine = FairShareEngine(sim)
        r = Resource("dev", 100.0)
        engine.submit(1000.0, [(r, 1.0)], lambda: None)
        engine.submit(1000.0, [(r, 1.0)], lambda: None)
        sim.run()
        assert engine.flows_completed == 2
        assert engine.peak_concurrency == 2
        # Each flow alone would take 10s; together they take 20s each.
        assert engine.ideal_seconds == pytest.approx(20.0)
        assert engine.realized_seconds == pytest.approx(40.0)
        assert engine.contention_seconds == pytest.approx(20.0)
