"""Tests for the four upgrade policies (Table 2)."""

import pytest

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager, configure_policies
from repro.core.upgrade import (
    OsaUpgradePolicy,
    XgbUpgradePolicy,
)
from repro.dfs import DFSClient, Master, NodeManager, NodeManager
from repro.dfs.placement import SingleTierPlacementPolicy
from repro.sim import Simulator


@pytest.fixture
def hdd_stack():
    """All files start on HDD (the Sec 7.4 isolation setup)."""
    sim = Simulator()
    topo = build_local_cluster(num_workers=3, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    master = Master(topo, SingleTierPlacementPolicy(topo, nm, Configuration()), sim)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim)
    return sim, master, client, manager


class TestOsa:
    def test_upgrades_accessed_file_not_in_memory(self, hdd_stack):
        sim, master, client, manager = hdd_stack
        policy = OsaUpgradePolicy(manager.ctx)
        file = client.create("/f", 64 * MB)
        assert policy.start_upgrade(file)
        assert policy.select_file_to_upgrade(file) is file
        assert policy.select_upgrade_tier(file) is StorageTier.MEMORY
        assert policy.stop_upgrade()  # single-file process

    def test_skips_memory_resident_file(self, hdd_stack):
        sim, master, client, manager = hdd_stack
        manager.set_upgrade_policy(OsaUpgradePolicy(manager.ctx))
        file = client.create("/f", 64 * MB)
        client.open("/f")
        sim.run(until=sim.now() + 120)  # let the upgrade commit
        assert master.blocks.file_has_tier(file, StorageTier.MEMORY)
        assert not manager.upgrade_policy.start_upgrade(file)

    def test_not_proactive(self, hdd_stack):
        _, _, _, manager = hdd_stack
        policy = OsaUpgradePolicy(manager.ctx)
        assert not policy.proactive
        assert not policy.start_upgrade(None)


class TestLrfuUpgrade:
    def test_requires_weight_above_threshold(self, hdd_stack):
        sim, master, client, manager = hdd_stack
        configure_policies(manager, upgrade="lrfu")
        policy = manager.upgrade_policy
        file = client.create("/f", 64 * MB)
        # One access: weight ~2 < threshold 3.
        client.open("/f")
        assert not policy.start_upgrade(file)
        # Rapid repeat accesses push the weight over 3.
        client.open("/f")
        client.open("/f")
        assert policy.start_upgrade(file)

    def test_memory_resident_skipped(self, hdd_stack):
        sim, master, client, manager = hdd_stack
        configure_policies(manager, upgrade="lrfu")
        policy = manager.upgrade_policy
        file = client.create("/f", 64 * MB)
        for _ in range(4):
            client.open("/f")
        sim.run(until=sim.now() + 300)
        if master.blocks.file_has_tier(file, StorageTier.MEMORY):
            assert not policy.start_upgrade(file)


class TestExdUpgrade:
    def test_admits_when_memory_has_room(self, hdd_stack):
        sim, master, client, manager = hdd_stack
        configure_policies(manager, upgrade="exd")
        policy = manager.upgrade_policy
        file = client.create("/f", 64 * MB)
        client.open("/f")
        assert policy.start_upgrade(file)

    def test_rejects_file_larger_than_memory(self, hdd_stack):
        sim, master, client, manager = hdd_stack
        configure_policies(manager, upgrade="exd")
        policy = manager.upgrade_policy
        # 3 nodes x 1GB memory; a 4GB file can never fit entirely.
        file = client.create("/huge", 4 * GB)
        client.open("/huge")
        assert not policy.start_upgrade(file)

    def test_weight_comparison_governs_admission_under_pressure(self, hdd_stack):
        sim, master, client, manager = hdd_stack
        configure_policies(manager, downgrade="exd", upgrade="exd")
        policy = manager.upgrade_policy
        # Fill memory with well-used (high-weight) files via upgrades.
        hot = [client.create(f"/hot{i}", 400 * MB) for i in range(7)]
        for f in hot:
            for _ in range(5):
                client.open(f.path)
            sim.run(until=sim.now() + 60)
        sim.run(until=sim.now() + 600)
        cold = client.create("/cold", 400 * MB)
        client.open(cold.path)
        free = manager.ctx.tier_free(StorageTier.MEMORY)
        if free < cold.size:
            # One access vs several high-weight victims: rejected.
            assert not policy.start_upgrade(cold)


class TestXgbUpgrade:
    def test_warmup_falls_back_to_osa(self, hdd_stack):
        sim, master, client, manager = hdd_stack
        configure_policies(manager, upgrade="xgb")
        policy = manager.upgrade_policy
        assert isinstance(policy, XgbUpgradePolicy)
        file = client.create("/f", 64 * MB)
        assert not policy.model.ready
        # Accessed files are upgraded OSA-style while the model warms up;
        # proactive scans stay gated on readiness.
        assert policy.start_upgrade(file)
        assert policy.select_file_to_upgrade(file) is file
        assert not policy.start_upgrade(None)

    def test_warmup_fallback_skips_memory_residents(self, hdd_stack):
        sim, master, client, manager = hdd_stack
        configure_policies(manager, downgrade=None, upgrade="xgb")
        file = client.create("/f", 64 * MB)
        client.open("/f")
        sim.run(until=sim.now() + 120)  # fallback upgrade commits
        assert master.blocks.file_has_tier(file, StorageTier.MEMORY)
        assert not manager.upgrade_policy.start_upgrade(file)

    def test_budget_accounting(self, hdd_stack):
        _, _, _, manager = hdd_stack
        configure_policies(manager, upgrade="xgb")
        policy = manager.upgrade_policy
        policy.on_upgrade_scheduled(None, policy.budget + 1)
        assert policy.stop_upgrade()

    def test_tier_candidates_for_hdd_file(self, hdd_stack):
        sim, master, client, manager = hdd_stack
        configure_policies(manager, upgrade="xgb")
        policy = manager.upgrade_policy
        file = client.create("/f", 64 * MB)
        assert policy.upgrade_tier_candidates(file) == [
            StorageTier.MEMORY,
            StorageTier.SSD,
        ]
