"""Fair-share IoModel behaviour: re-pricing, shared resources, transfers."""

from __future__ import annotations

import pytest

from repro.cluster.builder import build_local_cluster, build_tiered_cluster
from repro.cluster.hardware import (
    DEFAULT_REMOTE_ENDPOINT_BANDWIDTH,
)
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.engine.iomodel import IoModel, WriteLeg
from repro.engine.runner import SystemConfig, run_workload
from repro.sim.simulator import Simulator
from repro.workload.profiles import PROFILES, scaled_profile
from repro.workload.synthesis import synthesize_trace


def fair_model(topology, conf=None):
    sim = Simulator()
    model = IoModel(topology, sim=sim, pricing="fairshare", conf=conf)
    return sim, model


def node_device(topology, node_index, tier_name):
    node = topology.nodes[node_index]
    tier = topology.hierarchy.tier(tier_name)
    return node.devices(tier)[0]


class TestModeGuards:
    def test_legacy_api_raises_under_fairshare(self):
        sim, model = fair_model(build_local_cluster(num_workers=3))
        node = model.topology.nodes[0].node_id
        device = node_device(model.topology, 0, "HDD")
        with pytest.raises(RuntimeError, match="snapshot"):
            model.start_read(1 * MB, device.device_id, False, node, node)

    def test_flow_api_raises_under_snapshot(self):
        model = IoModel(build_local_cluster(num_workers=3))
        node = model.topology.nodes[0].node_id
        device = node_device(model.topology, 0, "HDD")
        with pytest.raises(RuntimeError, match="fairshare"):
            model.read(1 * MB, device.device_id, False, node, node, lambda: None)

    def test_fairshare_requires_simulator(self):
        with pytest.raises(ValueError, match="simulator"):
            IoModel(build_local_cluster(num_workers=3), pricing="fairshare")

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown io model"):
            IoModel(build_local_cluster(num_workers=3), pricing="psq")


class TestRePricing:
    def test_lone_read_matches_snapshot_price(self):
        topology = build_local_cluster(num_workers=3)
        sim, model = fair_model(topology)
        device = node_device(topology, 0, "HDD")
        node = topology.nodes[0].node_id
        done = []
        model.read(128 * MB, device.device_id, False, node, node,
                   lambda: done.append(sim.now()))
        sim.run()
        profile = device.profile
        expected = profile.seek_latency + 128 * MB / profile.read_bw
        assert done == [pytest.approx(expected)]

    def test_lone_write_streams_at_write_bandwidth(self):
        topology = build_local_cluster(num_workers=3)
        sim, model = fair_model(topology)
        device = node_device(topology, 0, "HDD")
        node = topology.nodes[0].node_id
        done = []
        legs = [WriteLeg(device=device, remote=False, node_id=node)]
        model.write(128 * MB, legs, node, lambda: done.append(sim.now()))
        sim.run()
        profile = device.profile
        expected = profile.seek_latency + 128 * MB / profile.write_bw
        assert done == [pytest.approx(expected)]

    def test_late_joiner_delays_early_flow(self):
        """The defining fix over snapshot pricing: a flow that started
        alone is re-priced when a second flow joins its device."""
        topology = build_local_cluster(num_workers=3)
        sim, model = fair_model(topology)
        device = node_device(topology, 0, "HDD")
        node = topology.nodes[0].node_id
        alone_done = []
        # Price the same read alone for reference.
        model.read(128 * MB, device.device_id, False, node, node,
                   lambda: alone_done.append(sim.now()))
        sim.run()
        alone = alone_done[0]

        sim2, model2 = fair_model(topology)
        done = {}
        model2.read(128 * MB, device.device_id, False, node, node,
                    lambda: done.setdefault("first", sim2.now()))
        # Join halfway through the first flow's solo completion time.
        sim2.at(alone / 2, lambda: model2.read(
            128 * MB, device.device_id, False, node, node,
            lambda: done.setdefault("second", sim2.now())
        ))
        sim2.run()
        assert done["first"] > alone * 1.4  # re-priced, not snapshot
        assert model2.engine.active_flows == 0

    def test_remote_read_capped_by_network(self):
        topology = build_local_cluster(num_workers=3)
        sim, model = fair_model(topology)
        device = node_device(topology, 0, "MEMORY")
        reader = topology.nodes[1].node_id
        source = topology.nodes[0].node_id
        done = []
        model.read(1 * GB, device.device_id, True, reader, source,
                   lambda: done.append(sim.now()))
        sim.run()
        # Memory reads 3000 MB/s but the NIC caps the flow at 1250 MB/s.
        expected = device.profile.seek_latency + 1 * GB / model.network_bandwidth
        assert done == [pytest.approx(expected)]


class TestSharedRemoteEndpoint:
    def aggregate_remote_throughput(self, workers: int, conf=None) -> float:
        topology = build_tiered_cluster(num_workers=workers, tiers="remote5")
        sim, model = fair_model(topology, conf)
        size = 1 * GB
        done = []
        for i, node in enumerate(topology.nodes):
            tier = topology.hierarchy.tier("REMOTE")
            device = node.devices(tier)[0]
            model.read(size, device.device_id, False, node.node_id, node.node_id,
                       lambda: done.append(sim.now()))
        sim.run()
        assert len(done) == workers
        return workers * size / max(done)

    def test_aggregate_throughput_does_not_scale_with_workers(self):
        """The ROADMAP item this PR closes: the remote tier is a shared
        endpoint, so doubling the workers must not double cold-tier
        bandwidth."""
        t12 = self.aggregate_remote_throughput(12)
        t24 = self.aggregate_remote_throughput(24)
        assert t12 == pytest.approx(DEFAULT_REMOTE_ENDPOINT_BANDWIDTH, rel=0.01)
        assert t24 == pytest.approx(DEFAULT_REMOTE_ENDPOINT_BANDWIDTH, rel=0.01)
        assert t24 / t12 == pytest.approx(1.0, rel=0.02)

    def test_endpoint_bandwidth_configurable(self):
        conf = Configuration({"io.remote_endpoint_bandwidth": 220 * MB})
        t4 = self.aggregate_remote_throughput(4, conf)
        assert t4 == pytest.approx(220 * MB, rel=0.01)

    def test_local_tiers_unaffected_by_endpoint(self):
        topology = build_tiered_cluster(num_workers=12, tiers="remote5")
        sim, model = fair_model(topology)
        done = []
        for node in topology.nodes:
            tier = topology.hierarchy.tier("HDD")
            device = node.devices(tier)[0]
            model.read(1 * GB, device.device_id, False, node.node_id,
                       node.node_id, lambda: done.append(sim.now()))
        sim.run()
        hdd = topology.hierarchy.tier("HDD").media
        expected = hdd.seek_latency + 1 * GB / hdd.read_bw
        # Independent per-node devices: all finish at the solo time.
        assert max(done) == pytest.approx(expected)


class TestRackUplinks:
    def test_cross_rack_flows_share_the_uplink(self):
        topology = build_local_cluster(num_workers=8, rack_size=4)
        uplink = 200 * MB
        topology.set_rack_uplinks(uplink)
        sim, model = fair_model(topology)
        done = []
        # Four concurrent cross-rack memory reads: each would get the
        # full 1250 MB/s NIC, but the two rack uplinks cap the sum.
        for i in range(4):
            source = topology.nodes[i].node_id
            reader = topology.nodes[4 + i].node_id
            device = node_device(topology, i, "MEMORY")
            model.read(1 * GB, device.device_id, True, reader, source,
                       lambda: done.append(sim.now()))
        sim.run()
        aggregate = 4 * GB / max(done)
        assert aggregate == pytest.approx(uplink, rel=0.01)

    def test_same_rack_flows_skip_the_uplink(self):
        topology = build_local_cluster(num_workers=8, rack_size=4)
        topology.set_rack_uplinks(200 * MB)
        sim, model = fair_model(topology)
        done = []
        source = topology.nodes[0].node_id
        reader = topology.nodes[1].node_id  # same rack
        device = node_device(topology, 0, "MEMORY")
        model.read(1 * GB, device.device_id, True, reader, source,
                   lambda: done.append(sim.now()))
        sim.run()
        expected = device.profile.seek_latency + 1 * GB / model.network_bandwidth
        assert done == [pytest.approx(expected)]


class TestMonitorTransfersContend:
    def run_fb(self, io_model: str):
        trace = synthesize_trace(scaled_profile(PROFILES["FB"], 0.3), seed=42)
        config = SystemConfig(
            label=f"FB/{io_model}",
            placement="octopus",
            downgrade="lru",
            upgrade="osa",
            io_model=io_model,
            memory_per_node=1 * GB,  # tight memory forces tier transfers
            seed=42,
        )
        return run_workload(trace, config)

    def test_fairshare_transfers_priced_through_engine(self):
        result = self.run_fb("fairshare")
        assert result.transfers_committed > 0
        assert result.transfer_ideal_seconds > 0
        # Contention can only make transfers slower than standalone.
        assert (
            result.transfer_realized_seconds
            >= result.transfer_ideal_seconds * (1 - 1e-9)
        )
        assert result.io_stats["model"] == "fairshare"
        assert result.io_stats["flows_completed"] == result.io_stats["flows_started"]

    def test_slow_monitor_network_knob_cannot_inflate_ideal(self):
        """Under fairshare the NIC resources govern transfer timing; a
        slow monitor.network_bandwidth must not price the ideal above
        what the engine realizes (delay would clamp to zero exactly
        when contention matters)."""
        trace = synthesize_trace(scaled_profile(PROFILES["FB"], 0.3), seed=42)
        config = SystemConfig(
            label="knob",
            placement="octopus",
            downgrade="lru",
            upgrade="osa",
            io_model="fairshare",
            memory_per_node=1 * GB,
            seed=42,
            conf={"monitor.network_bandwidth": 125 * MB},  # 1GbE
        )
        result = run_workload(trace, config)
        assert result.transfers_committed > 0
        assert (
            result.transfer_realized_seconds
            >= result.transfer_ideal_seconds * (1 - 1e-9)
        )

    def test_io_network_bandwidth_conf_shapes_nic_resources(self):
        topology = build_local_cluster(num_workers=3)
        conf = Configuration({"io.network_bandwidth": 125 * MB})
        sim, model = fair_model(topology, conf)
        device = node_device(topology, 0, "MEMORY")
        done = []
        model.read(1 * GB, device.device_id, True,
                   topology.nodes[1].node_id, topology.nodes[0].node_id,
                   lambda: done.append(sim.now()))
        sim.run()
        expected = device.profile.seek_latency + 1 * GB / (125 * MB)
        assert done == [pytest.approx(expected)]

    def test_snapshot_transfers_keep_standalone_timing(self):
        result = self.run_fb("snapshot")
        assert result.transfers_committed > 0
        assert result.transfer_realized_seconds == pytest.approx(
            result.transfer_ideal_seconds
        )

    def test_transfer_flow_contends_with_foreground_read(self):
        topology = build_local_cluster(num_workers=3)
        sim, model = fair_model(topology)
        hdd = node_device(topology, 0, "HDD")
        ssd = node_device(topology, 0, "SSD")
        node = topology.nodes[0].node_id
        done = {}
        # Foreground read on the HDD...
        model.read(128 * MB, hdd.device_id, False, node, node,
                   lambda: done.setdefault("read", sim.now()))
        # ...and a concurrent HDD->SSD transfer of the same size.
        model.transfer(128 * MB, hdd.device_id, node, ssd.device_id, node,
                       lambda: done.setdefault("transfer", sim.now()))
        sim.run()
        solo = hdd.profile.seek_latency + 128 * MB / hdd.profile.read_bw
        assert done["read"] > solo * 1.5  # the migration slowed the read
