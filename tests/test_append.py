"""Tests for file appends and the on_file_modified flow."""

import pytest

from repro.cluster import StorageTier
from repro.common.errors import InvalidPathError
from repro.common.units import MB
from repro.dfs import FileSystemListener


class RecordingListener(FileSystemListener):
    def __init__(self):
        self.modified = []
        self.data_added = []

    def on_file_modified(self, file):
        self.modified.append(file.path)

    def on_data_added(self, tier):
        self.data_added.append(tier)


class TestAppend:
    def test_append_grows_size_and_blocks(self, master, client):
        client.create("/f", 100 * MB)
        client.append("/f", 200 * MB)
        status = client.file_status("/f")
        assert status.size == 300 * MB
        assert status.block_count == 1 + 2  # 100MB + (128 + 72)MB

    def test_appended_blocks_fully_replicated(self, master, client):
        client.create("/f", 64 * MB, replication=3)
        client.append("/f", 64 * MB)
        file = master.get_file("/f")
        for block in master.blocks.blocks_of(file):
            assert block.replica_count == 3

    def test_append_fires_modified_and_data_added(self, master, client):
        listener = RecordingListener()
        client.create("/f", 64 * MB)
        master.add_listener(listener)
        client.append("/f", 64 * MB)
        assert listener.modified == ["/f"]
        assert StorageTier.MEMORY in listener.data_added

    def test_append_updates_modification_time(self, master, client, sim):
        client.create("/f", 64 * MB)
        sim.run(until=sim.now() + 100)
        sim.at(sim.now(), lambda: None)
        file = master.get_file("/f")
        created = file.modification_time
        master.append_file("/f", 10 * MB)
        assert file.modification_time >= created

    def test_append_to_missing_file_rejected(self, client):
        with pytest.raises(InvalidPathError):
            client.append("/missing", MB)

    def test_non_positive_append_rejected(self, master, client):
        client.create("/f", MB)
        with pytest.raises(InvalidPathError):
            client.append("/f", 0)

    def test_append_respects_block_boundaries(self, master, client):
        client.create("/f", 128 * MB)
        client.append("/f", 300 * MB)
        file = master.get_file("/f")
        sizes = [b.size for b in master.blocks.blocks_of(file)]
        assert sizes == [128 * MB, 128 * MB, 128 * MB, 44 * MB]
