"""Tests for the LeCaR expert-selection downgrade policy (Sec 2.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager, configure_policies
from repro.core.lecar import LeCaRDowngradePolicy
from repro.dfs import DFSClient, Master, NodeManager, OctopusPlacementPolicy
from repro.sim import Simulator


@pytest.fixture
def stack():
    sim = Simulator()
    topo = build_local_cluster(num_workers=3, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    master = Master(topo, OctopusPlacementPolicy(topo, nm, Configuration()), sim)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim)
    return sim, master, client, manager


class TestWeights:
    def test_initial_weights_balanced(self, stack):
        _, _, _, manager = stack
        policy = LeCaRDowngradePolicy(manager.ctx)
        assert policy.weights == (0.5, 0.5)

    def test_ghost_hit_penalizes_mistaken_expert(self, stack):
        sim, master, client, manager = stack
        policy = LeCaRDowngradePolicy(manager.ctx, seed=2)
        manager.set_downgrade_policy(policy)
        client.create("/a", 64 * MB)
        client.create("/b", 64 * MB)
        victim = policy.select_file_to_downgrade(StorageTier.MEMORY)
        in_lru_ghost = victim.inode_id in policy._ghost_lru
        before = policy.weights
        client.open(victim.path)  # ghost hit: the evicting expert erred
        after = policy.weights
        if in_lru_ghost:
            assert after[0] < before[0]
        else:
            assert after[1] < before[1]

    def test_weights_stay_normalized(self, stack):
        sim, master, client, manager = stack
        policy = LeCaRDowngradePolicy(manager.ctx, seed=3)
        manager.set_downgrade_policy(policy)
        for i in range(6):
            client.create(f"/f{i}", 32 * MB)
        for _ in range(4):
            victim = policy.select_file_to_downgrade(StorageTier.MEMORY)
            client.open(victim.path)
        w = policy.weights
        assert w[0] > 0 and w[1] > 0
        assert w[0] + w[1] == pytest.approx(1.0)

    def test_recent_mistake_costs_more_than_stale(self, stack):
        _, _, client, manager = stack
        recent = LeCaRDowngradePolicy(manager.ctx)
        stale = LeCaRDowngradePolicy(manager.ctx)
        recent._penalize(0, age=1)
        stale._penalize(0, age=recent.history_capacity)
        assert recent.weights[0] < stale.weights[0]


class TestSelection:
    def test_victim_comes_from_tier(self, stack):
        sim, master, client, manager = stack
        policy = LeCaRDowngradePolicy(manager.ctx, seed=7)
        manager.set_downgrade_policy(policy)
        client.create("/a", 64 * MB)
        client.create("/b", 64 * MB)
        victim = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert victim.path in ("/a", "/b")

    def test_empty_tier_returns_none(self, stack):
        _, _, _, manager = stack
        policy = LeCaRDowngradePolicy(manager.ctx)
        assert policy.select_file_to_downgrade(StorageTier.MEMORY) is None

    def test_ghost_capacity_bounded(self, stack):
        sim, master, client, manager = stack
        policy = LeCaRDowngradePolicy(manager.ctx, history_capacity=3, seed=11)
        manager.set_downgrade_policy(policy)
        for i in range(10):
            client.create(f"/f{i}", 16 * MB)
            policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert len(policy._ghost_lru) <= 3
        assert len(policy._ghost_lfu) <= 3

    def test_deleted_file_leaves_ghosts(self, stack):
        sim, master, client, manager = stack
        policy = LeCaRDowngradePolicy(manager.ctx, seed=13)
        manager.set_downgrade_policy(policy)
        client.create("/a", 64 * MB)
        victim = policy.select_file_to_downgrade(StorageTier.MEMORY)
        client.delete(victim.path)
        assert victim.inode_id not in policy._ghost_lru
        assert victim.inode_id not in policy._ghost_lfu

    def test_parameter_validation(self, stack):
        _, _, _, manager = stack
        with pytest.raises(ValueError):
            LeCaRDowngradePolicy(manager.ctx, learning_rate=0.0)
        with pytest.raises(ValueError):
            LeCaRDowngradePolicy(manager.ctx, history_capacity=0)


class TestRegistryIntegration:
    def test_configure_by_name(self, stack):
        _, _, _, manager = stack
        configure_policies(manager, downgrade="lecar")
        assert manager.downgrade_policy.name == "lecar"

    def test_end_to_end_run(self, stack):
        sim, master, client, manager = stack
        configure_policies(manager, downgrade="lecar")
        for i in range(20):
            client.create(f"/f{i}", 256 * MB)
            sim.run(until=sim.now() + 30)
        sim.run(until=sim.now() + 600)
        assert manager.monitor.bytes_downgraded[StorageTier.MEMORY] > 0


@given(
    ages=st.lists(st.integers(min_value=0, max_value=2000), min_size=1, max_size=50),
    experts=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=50),
)
def test_weights_invariant_under_any_penalty_sequence(ages, experts):
    """Weights remain a strictly positive probability vector (property)."""
    sim = Simulator()
    topo = build_local_cluster(num_workers=3)
    nm = NodeManager(topo)
    master = Master(topo, OctopusPlacementPolicy(topo, nm, Configuration()), sim)
    manager = ReplicationManager(master, sim)
    policy = LeCaRDowngradePolicy(manager.ctx)
    for age, expert in zip(ages, experts):
        policy._penalize(expert, age)
    w = policy.weights
    assert w[0] > 0 and w[1] > 0
    assert w[0] + w[1] == pytest.approx(1.0)
