"""Tests for the end-to-end workload runner and scheduler behaviour."""

import pytest

from repro.common.units import MB
from repro.engine import (
    SystemConfig,
    WorkloadRunner,
    run_workload,
)
from repro.workload import FileCreation, OutputSpec, Trace, TraceJob


def tiny_trace():
    """3 files, 4 jobs with reuse, one output chain."""
    trace = Trace(name="tiny", duration=600.0)
    trace.creations = [
        FileCreation("/in/a", 128 * MB, 0.0),
        FileCreation("/in/b", 256 * MB, 5.0),
        FileCreation("/in/cold", 64 * MB, 10.0),
    ]
    trace.jobs = [
        TraceJob(0, 30.0, ["/in/a"], 128 * MB, [OutputSpec("/out/0", 32 * MB)],
                 cpu_seconds_per_byte=1e-8),
        TraceJob(1, 120.0, ["/in/a", "/in/b"], 384 * MB, [],
                 cpu_seconds_per_byte=1e-8),
        TraceJob(2, 200.0, ["/in/b"], 256 * MB, [], cpu_seconds_per_byte=1e-8),
        TraceJob(3, 400.0, ["/out/0"], 32 * MB, [], cpu_seconds_per_byte=1e-8),
    ]
    return trace


class TestWorkloadRunner:
    @pytest.mark.parametrize(
        "placement", ["hdfs", "hdfs-cache", "octopus", "single-hdd"]
    )
    def test_all_placements_run_clean(self, placement):
        result = run_workload(
            tiny_trace(),
            SystemConfig(label=placement, placement=placement, workers=4),
        )
        assert result.jobs_finished == 4
        assert result.metrics.bytes_read > 0

    def test_hdfs_never_serves_from_memory(self):
        result = run_workload(
            tiny_trace(), SystemConfig(label="hdfs", placement="hdfs", workers=4)
        )
        assert result.metrics.hit_ratio() == 0.0

    def test_octopus_serves_from_memory(self):
        result = run_workload(
            tiny_trace(), SystemConfig(label="octopus", placement="octopus", workers=4)
        )
        assert result.metrics.hit_ratio() > 0.5

    def test_policies_attach_and_move_data(self):
        config = SystemConfig(
            label="lru-osa",
            placement="single-hdd",
            downgrade="lru",
            upgrade="osa",
            workers=4,
        )
        result = run_workload(tiny_trace(), config)
        # OSA pulls the accessed files into memory (from HDD-only start).
        assert result.bytes_upgraded_memory > 0

    def test_completion_times_recorded_per_bin(self):
        result = run_workload(
            tiny_trace(), SystemConfig(label="x", placement="octopus", workers=4)
        )
        bins = result.metrics.bins
        assert bins["A"].jobs_completed == 1  # the 32MB chain job
        assert bins["B"].jobs_completed == 3  # 128MB boundary, 256MB, 384MB

    def test_missing_input_tolerated(self):
        trace = tiny_trace()
        trace.jobs.append(
            TraceJob(9, 450.0, ["/never/created"], 1 * MB, [],
                     cpu_seconds_per_byte=1e-8)
        )
        runner = WorkloadRunner(
            trace, SystemConfig(label="x", placement="octopus", workers=4)
        )
        result = runner.run()
        assert result.jobs_finished == 5
        assert runner.scheduler.missing_inputs == 1

    def test_output_files_written_to_dfs(self):
        runner = WorkloadRunner(
            tiny_trace(), SystemConfig(label="x", placement="octopus", workers=4)
        )
        runner.run()
        assert runner.master.exists("/out/0")
        assert runner.metrics.bytes_written == 32 * MB

    def test_accounting_balanced_after_run(self):
        runner = WorkloadRunner(
            tiny_trace(),
            SystemConfig(label="x", placement="octopus", downgrade="lru",
                         upgrade="osa", workers=4),
        )
        runner.run()
        assert runner.master.open_ticket_count() == 0
        used = sum(
            d.used for n in runner.topology.nodes for d in n.devices()
        )
        replica_bytes = sum(
            b.size * b.replica_count
            for f in runner.master.files()
            for b in runner.master.blocks.blocks_of(f)
        )
        assert used == replica_bytes

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            run_workload(tiny_trace(), SystemConfig(label="x", placement="bogus"))

    def test_summary_fields(self):
        result = run_workload(
            tiny_trace(), SystemConfig(label="s", placement="octopus", workers=4)
        )
        summary = result.summary()
        assert summary["label"] == "s"
        assert summary["jobs"] == 4


class TestSchedulerBehaviour:
    def test_queueing_under_slot_pressure(self):
        # 1 worker x 2 slots, a burst of jobs -> completion includes waits.
        trace = Trace(name="burst", duration=100.0)
        trace.creations = [FileCreation(f"/f{i}", 128 * MB, 0.0) for i in range(6)]
        trace.jobs = [
            TraceJob(i, 1.0, [f"/f{i}"], 128 * MB, [], cpu_seconds_per_byte=2e-7)
            for i in range(6)
        ]
        result = run_workload(
            trace,
            SystemConfig(
                label="slots", placement="single-hdd", workers=1, task_slots=2
            ),
        )
        assert result.jobs_finished == 6
        times = [result.metrics.bins["B"].mean_completion_time]
        assert times[0] > 0

    def test_locality_prefers_replica_nodes(self):
        trace = Trace(name="loc", duration=100.0)
        trace.creations = [FileCreation("/f", 128 * MB, 0.0)]
        trace.jobs = [TraceJob(0, 1.0, ["/f"], 128 * MB, [], cpu_seconds_per_byte=0.0)]
        runner = WorkloadRunner(
            trace, SystemConfig(label="x", placement="octopus", workers=6)
        )
        result = runner.run()
        # With idle cluster and replicas on 3 nodes, the read is local.
        assert result.metrics.task_reads_memory == 1
