"""Tests for scenario-aware policy presets and their SystemConfig wiring."""

import pytest

from repro.core.presets import (
    PRESETS,
    PolicyPreset,
    get_preset,
    preset_for_scenario,
    preset_names,
    register_preset,
)
from repro.engine.runner import SystemConfig
from repro.experiments.preset_tuning import run_preset_tuning
from repro.workload.scenarios import scenario_names


class TestRegistry:
    def test_every_scenario_has_a_preset(self):
        assert set(preset_names()) == set(scenario_names())

    def test_get_preset_known(self):
        preset = get_preset("flashcrowd")
        assert isinstance(preset, PolicyPreset)
        assert preset.conf["downgrade.start_threshold"] < 0.90

    def test_get_preset_unknown(self):
        with pytest.raises(ValueError, match="unknown preset"):
            get_preset("nope")

    def test_preset_for_scenario(self):
        assert preset_for_scenario("mlscan") is PRESETS["mlscan"]
        assert preset_for_scenario(None) is None
        assert preset_for_scenario("not-registered") is None

    def test_thresholds_are_valid_pairs(self):
        # Policy construction enforces 0 < stop <= start <= 1; presets
        # must never ship values that blow up at configure time.
        for preset in PRESETS.values():
            start = preset.conf.get("downgrade.start_threshold")
            stop = preset.conf.get("downgrade.stop_threshold")
            if start is not None or stop is not None:
                assert 0 < stop <= start <= 1.0, preset.name

    def test_register_round_trip(self):
        try:
            register_preset("tmp-test", "temporary", **{"stats.k": 4})
            assert get_preset("tmp-test").conf == {"stats.k": 4}
        finally:
            PRESETS.pop("tmp-test", None)


class TestSystemConfigWiring:
    def test_no_scenario_resolves_no_preset(self):
        # Every pre-preset configuration: auto + no scenario = no-op
        # (the engine mode is always folded in).
        config = SystemConfig(label="x")
        assert config.resolve_preset() is None
        assert config.effective_conf() == {"engine.mode": "reference"}

    def test_auto_selects_scenario_preset(self):
        config = SystemConfig(label="x", scenario="flashcrowd")
        assert config.resolve_preset() is PRESETS["flashcrowd"]
        conf = config.effective_conf()
        assert conf["downgrade.start_threshold"] == 0.80

    def test_explicit_preset_overrides_scenario(self):
        config = SystemConfig(label="x", scenario="flashcrowd", preset="mlscan")
        assert config.resolve_preset() is PRESETS["mlscan"]

    def test_none_disables(self):
        for off in (None, "none"):
            config = SystemConfig(label="x", scenario="flashcrowd", preset=off)
            assert config.resolve_preset() is None
            assert config.effective_conf() == {"engine.mode": "reference"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            SystemConfig(label="x", preset="nope").effective_conf()

    def test_explicit_conf_wins_over_preset(self):
        config = SystemConfig(
            label="x",
            scenario="flashcrowd",
            conf={"downgrade.start_threshold": 0.99},
        )
        conf = config.effective_conf()
        assert conf["downgrade.start_threshold"] == 0.99
        # Untouched preset keys still apply.
        assert conf["downgrade.stop_threshold"] == 0.70

    def test_cache_mode_keys_still_folded_in(self):
        config = SystemConfig(label="x", scenario="fb", cache_mode=True)
        conf = config.effective_conf()
        assert conf["manager.cache_mode"] is True
        assert conf["downgrade.action"] == "delete"


class TestPresetEffect:
    def test_preset_changes_figures_for_flashcrowd(self):
        # The acceptance-level property: presets measurably move at
        # least one scenario's figure-level metric on identical streams.
        deltas = run_preset_tuning(
            scale=0.5, workers=5, scenarios=["flashcrowd"]
        )
        assert len(deltas) == 1
        d = deltas[0]
        moved = (
            d.hit_delta != 0.0
            or d.task_hours_delta != 0.0
            or d.preset.transfers_committed != d.default.transfers_committed
        )
        assert moved, "flashcrowd preset left every figure-level metric unchanged"

    def test_sweep_covers_all_presets(self):
        # Registry-level sanity without running the heavy sweep.
        assert sorted(PRESETS) == preset_names()
