"""Tests for the policy registry and end-to-end pair definitions."""

import pytest

from repro.cluster import build_local_cluster
from repro.common.units import GB
from repro.core import (
    DOWNGRADE_POLICY_NAMES,
    END_TO_END_PAIRS,
    ReplicationManager,
    UPGRADE_POLICY_NAMES,
    configure_policies,
)
from repro.core.registry import EXTRA_DOWNGRADE_POLICY_NAMES
from repro.dfs import Master, NodeManager, OctopusPlacementPolicy
from repro.sim import Simulator


@pytest.fixture
def manager():
    sim = Simulator()
    topo = build_local_cluster(num_workers=2, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    master = Master(topo, OctopusPlacementPolicy(topo, nm), sim)
    return ReplicationManager(master, sim)


class TestNames:
    def test_table1_policies_all_constructible(self, manager):
        for name in DOWNGRADE_POLICY_NAMES:
            configure_policies(manager, downgrade=name)
            assert manager.downgrade_policy.name == name

    def test_table2_policies_all_constructible(self, manager):
        for name in UPGRADE_POLICY_NAMES:
            configure_policies(manager, upgrade=name)
            assert manager.upgrade_policy.name == name

    def test_extension_policies_all_constructible(self, manager):
        for name in EXTRA_DOWNGRADE_POLICY_NAMES:
            configure_policies(manager, downgrade=name)
            assert manager.downgrade_policy.name == name

    def test_case_insensitive(self, manager):
        configure_policies(manager, downgrade="LRU", upgrade="OSA")
        assert manager.downgrade_policy.name == "lru"
        assert manager.upgrade_policy.name == "osa"

    def test_none_leaves_side_unset(self, manager):
        configure_policies(manager, downgrade="lru")
        assert manager.upgrade_policy is None


class TestSharing:
    def test_lrfu_pair_shares_tracker(self, manager):
        configure_policies(manager, downgrade="lrfu", upgrade="lrfu")
        assert manager.downgrade_policy.weights is manager.upgrade_policy.weights

    def test_exd_pair_shares_tracker(self, manager):
        configure_policies(manager, downgrade="exd", upgrade="exd")
        assert manager.downgrade_policy.weights is manager.upgrade_policy.weights

    def test_xgb_pair_shares_trainer_models(self, manager):
        configure_policies(manager, downgrade="xgb", upgrade="xgb")
        trainer = manager.trainer
        assert trainer is not None
        assert manager.downgrade_policy.model is trainer.downgrade_model
        assert manager.upgrade_policy.model is trainer.upgrade_model
        assert trainer.downgrade_model is not trainer.upgrade_model

    def test_marker_uses_downgrade_model(self, manager):
        configure_policies(manager, downgrade="marker")
        assert manager.downgrade_policy.model is manager.trainer.downgrade_model


class TestEndToEndPairs:
    def test_pairs_match_paper_labels(self):
        assert set(END_TO_END_PAIRS) == {"LRU-OSA", "LRFU", "EXD", "XGB"}
        assert END_TO_END_PAIRS["LRU-OSA"] == ("lru", "osa")
        for label, (down, up) in END_TO_END_PAIRS.items():
            assert down in DOWNGRADE_POLICY_NAMES
            assert up in UPGRADE_POLICY_NAMES
