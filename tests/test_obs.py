"""Unit tests for the ``repro.obs`` telemetry layer and results log.

Covers the pieces end-to-end runs exercise only incidentally: the
tracer envelope, the timeseries sampler's column discipline, each
exporter's format contract (JSONL canonical bytes, Chrome trace-event
structure, Prometheus text exposition), the summarize/explain
post-processors, the schema validator, and the daemon's results log.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.engine.runner import SystemConfig, WorkloadRunner
from repro.obs.export import (
    prometheus_text,
    read_jsonl,
    to_chrome,
    trace_line,
    write_chrome,
    write_jsonl,
)
from repro.obs.summary import explain, render_explain, render_summary, summarize
from repro.obs.timeseries import TimeseriesRecorder
from repro.obs.trace import EVENT_TYPES, REQUIRED_FIELDS, Tracer
from repro.service.results import ResultsLog
from repro.service.tenants import Tenant
from repro.workload.scenarios import build_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def traced_run():
    """One small traced + sampled run shared by the export tests."""
    stream = build_scenario("fb", seed=7, scale=0.05)
    config = SystemConfig(
        label="obs-unit",
        downgrade="lru",
        upgrade="osa",
        seed=7,
        conf={"obs.trace": True, "obs.sample_interval": 600.0},
    )
    runner = WorkloadRunner(stream, config)
    result = runner.run()
    return runner, result


class TestTracer:
    def test_envelope_and_sequence(self):
        clock = iter([1.0, 2.5, 2.5])
        tracer = Tracer(lambda: next(clock))
        tracer.emit("file_delete", path="/a")
        tracer.emit("file_delete", path="/b", bytes=10)
        record = tracer.emit("retrain", sampled=3, points=9)
        assert [r["seq"] for r in tracer.records] == [0, 1, 2]
        assert [r["t"] for r in tracer.records] == [1.0, 2.5, 2.5]
        assert record == {"ev": "retrain", "t": 2.5, "seq": 2, "sampled": 3, "points": 9}
        assert len(tracer) == 3

    def test_schema_tables_agree(self):
        assert set(REQUIRED_FIELDS) == EVENT_TYPES


class TestTimeseries:
    def test_rejects_nonpositive_interval(self, traced_run):
        runner, _ = traced_run
        with pytest.raises(ValueError):
            TimeseriesRecorder(runner, 0.0)

    def test_columns_stay_parallel(self, traced_run):
        runner, _ = traced_run
        ts = runner.timeseries
        n = ts.samples
        assert n >= 2
        assert len(ts.t) == n
        assert ts.t == sorted(ts.t)
        for name in ts.tier_capacity:
            assert len(ts.tier_used[name]) == n
            assert len(ts.queue_delay[name]) == n
        assert len(ts.inflight) == n == len(ts.hit_ratio) == len(ts.pending)

    def test_peak_utilization_bounded(self, traced_run):
        runner, _ = traced_run
        peaks = runner.timeseries.peak_utilization()
        assert set(peaks) == set(runner.timeseries.tier_capacity)
        assert all(0.0 <= v <= 1.0 for v in peaks.values())

    def test_to_dict_round_trips_through_json(self, traced_run):
        runner, _ = traced_run
        payload = json.loads(json.dumps(runner.timeseries.to_dict()))
        assert payload["interval"] == 600.0
        assert len(payload["t"]) == runner.timeseries.samples

    def test_stop_is_idempotent(self, traced_run):
        runner, _ = traced_run
        before = runner.timeseries.samples
        runner.timeseries.stop()
        assert runner.timeseries.samples == before


class TestJsonlExport:
    def test_trace_line_is_canonical(self):
        assert trace_line({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    @pytest.mark.parametrize("name", ["trace.jsonl", "trace.jsonl.gz"])
    def test_write_read_round_trip(self, traced_run, tmp_path, name):
        runner, _ = traced_run
        path = str(tmp_path / name)
        count = write_jsonl(runner.tracer.records, path)
        assert count == len(runner.tracer.records)
        assert read_jsonl(path) == runner.tracer.records


class TestChromeExport:
    def test_structure(self, traced_run, tmp_path):
        runner, _ = traced_run
        doc = to_chrome(runner.tracer.records)
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "M" in phases and "X" in phases and "i" in phases
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0
        path = str(tmp_path / "chrome.json")
        assert write_chrome(runner.tracer.records, path) == len(events)
        assert json.load(open(path)) == doc

    def test_migration_pairing(self):
        records = [
            {"ev": "migration_start", "t": 1.0, "seq": 0, "kind": "downgrade",
             "block": 5, "path": "/f", "bytes": 10,
             "src": {"node": "n0", "tier": "MEMORY"},
             "dst": {"node": "n0", "tier": "SSD"}},
            {"ev": "migration_commit", "t": 3.0, "seq": 1, "kind": "downgrade",
             "block": 5, "path": "/f", "bytes": 10, "tier": "SSD"},
        ]
        spans = [e for e in to_chrome(records)["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["ts"] == 1_000_000 and spans[0]["dur"] == 2_000_000


class TestPrometheus:
    def test_engine_and_tenant_sections(self):
        tenants = [
            {"id": "t1", "name": 'fb "prod"', "state": "finished",
             "jobs_submitted": 3, "jobs_finished": 3, "events_emitted": 9,
             "hit_ratio": 0.5, "bytes_read": 1024}
        ]
        text = prometheus_text(
            {"events_processed": 42, "label": "skipped"},
            tenants=tenants,
            status="serving",
        )
        assert text.endswith("\n")
        assert 'repro_service_up{status="serving"} 1' in text
        assert "repro_engine_events_processed 42" in text
        assert "label" not in text
        assert 'name="fb \\"prod\\""' in text
        assert 'repro_tenant_hit_ratio{tenant="t1",' in text

    def test_service_engine_renders(self):
        from repro.service.engine import ServiceEngine

        engine = ServiceEngine()
        text = engine.prometheus()
        assert "repro_engine_pending_events" in text
        assert 'repro_service_up{status="starting"} 0' in text


class TestSummary:
    def test_summarize_counts_and_span(self, traced_run):
        runner, result = traced_run
        summary = summarize(runner.tracer.records)
        assert summary["records"] == len(runner.tracer.records)
        assert summary["counts"]["job_finish"] == result.jobs_finished
        assert summary["span_seconds"] >= 0
        assert "job_finish" in render_summary(summary)

    def test_explain_reconstructs_placement(self, traced_run):
        runner, _ = traced_run
        created = next(
            r for r in runner.tracer.records if r["ev"] == "file_create"
        )
        history = explain(runner.tracer.records, created["path"])
        assert [r["ev"] for r in history].count("file_create") == 1
        assert any(r["ev"] == "placement" for r in history)
        rendered = render_explain(created["path"], history)
        assert "placed on" in rendered and created["path"] in rendered

    def test_explain_unknown_path(self):
        assert explain([], "/nope") == []
        assert "no trace records" in render_explain("/nope", [])


class TestCheckTraceTool:
    def test_valid_trace_passes(self, traced_run, tmp_path):
        runner, _ = traced_run
        path = str(tmp_path / "t.jsonl")
        write_jsonl(runner.tracer.records, path)
        tool = _load_tool("check_trace")
        assert tool.check_file(path) == []
        assert tool.main([path]) == 0

    def test_violations_are_caught(self, tmp_path):
        tool = _load_tool("check_trace")
        bad = [
            {"ev": "nope", "t": 1.0, "seq": 0},
            {"ev": "file_delete", "t": -1.0, "seq": 0},
            {"ev": "file_delete", "t": 1.0, "seq": 7, "path": "/a"},
        ]
        errors = tool.validate_records(bad)
        assert any("unknown event type" in e for e in errors)
        assert any("bad timestamp" in e for e in errors)
        assert any("seq" in e for e in errors)
        assert any("missing fields" in e for e in errors)
        path = str(tmp_path / "bad.jsonl")
        write_jsonl(bad, path)
        assert tool.main([path]) == 1


class TestResultsLog:
    def _tenant(self, tenant_id="t1", admitted=100.0):
        tenant = Tenant(tenant_id=tenant_id, name="fb", source="scenario:fb")
        tenant.state = "finished"
        tenant.admitted_wall = admitted
        return tenant

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultsLog(str(tmp_path / "none.jsonl")).load() == []

    def test_stream_end_then_final_collapse(self, tmp_path):
        log = ResultsLog(str(tmp_path / "r.jsonl"))
        tenant = self._tenant()
        log.record_tenant(tenant)
        tenant.collector.jobs_completed = 4
        log.record_tenant(tenant, final=True)
        loaded = log.load()
        assert len(loaded) == 1
        assert loaded[0]["final"] is True
        assert loaded[0]["tenant"]["jobs_finished"] == 4

    def test_restarted_daemon_ids_do_not_merge(self, tmp_path):
        log = ResultsLog(str(tmp_path / "r.jsonl"))
        log.record_tenant(self._tenant(admitted=100.0), final=True)
        log.record_tenant(self._tenant(admitted=200.0), final=True)
        assert len(log.load()) == 2

    def test_truncated_line_is_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        log = ResultsLog(str(path))
        log.record_tenant(self._tenant())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"wall": 1, "tena')
        assert len(log.load()) == 1
