"""Tests for offline training-data generation from traces."""

import numpy as np
import pytest

from repro.common.units import HOURS, MB, MINUTES
from repro.experiments.datasets import (
    generate_observation_stream,
    shift_timestamps,
    split_by_time,
    to_arrays,
)
from repro.ml.access_model import TrainingPoint
from repro.workload import FileCreation, OutputSpec, Trace, TraceJob


def make_trace():
    trace = Trace(name="t", duration=4 * HOURS)
    trace.creations = [
        FileCreation("/hot", 64 * MB, 0.0),
        FileCreation("/cold", 64 * MB, 0.0),
    ]
    # /hot read every 30 minutes; /cold never read.
    trace.jobs = [
        TraceJob(i, (i + 1) * 30 * MINUTES, ["/hot"], 64 * MB)
        for i in range(7)
    ]
    trace.jobs.append(
        TraceJob(99, 2 * HOURS, ["/hot"], 64 * MB, [OutputSpec("/out", 8 * MB)])
    )
    return trace


class TestStreamGeneration:
    def test_points_time_ordered(self):
        points = generate_observation_stream(make_trace(), window=30 * MINUTES)
        times = [p.timestamp for p in points]
        assert times == sorted(times)

    def test_access_points_positive_by_construction(self):
        # Points generated at an access time always carry label 1
        # (the access itself is inside the class window).
        trace = make_trace()
        window = 30 * MINUTES
        points = generate_observation_stream(trace, window=window, sample_size=0)
        access_times = {j.submit_time for j in trace.jobs}
        at_access = [p for p in points if p.timestamp in access_times]
        assert at_access
        assert all(p.label == 1 for p in at_access)

    def test_cold_file_sampled_negative(self):
        trace = make_trace()
        points = generate_observation_stream(
            trace, window=30 * MINUTES, sample_size=10, seed=3
        )
        # /cold is never accessed: every one of its points has label 0.
        # Identify never-accessed files by the missing last-access
        # feature (index 2), restricted to late samples so /hot's
        # pre-first-access points (which legitimately carry label 1)
        # are excluded.
        cold_points = [
            p
            for p in points
            if np.isnan(p.features[2]) and p.timestamp > 2.5 * HOURS
        ]
        assert cold_points
        assert all(p.label == 0 for p in cold_points)

    def test_outputs_tracked_with_creation_at_submit(self):
        trace = make_trace()
        points = generate_observation_stream(trace, window=30 * MINUTES)
        assert points  # generation covered outputs without error

    def test_deterministic(self):
        a = generate_observation_stream(make_trace(), window=1800.0, seed=5)
        b = generate_observation_stream(make_trace(), window=1800.0, seed=5)
        assert len(a) == len(b)
        assert all(
            np.allclose(x.features, y.features, equal_nan=True) and x.label == y.label
            for x, y in zip(a, b)
        )


class TestHelpers:
    def points(self):
        return [
            TrainingPoint(np.array([0.1]), 1, 100.0),
            TrainingPoint(np.array([0.2]), 0, 200.0),
            TrainingPoint(np.array([0.3]), 1, 300.0),
        ]

    def test_split_by_time(self):
        segments = split_by_time(self.points(), boundaries=(150.0, 250.0))
        assert [len(s) for s in segments] == [1, 1, 1]
        assert segments[0][0].timestamp == 100.0

    def test_to_arrays(self):
        X, y = to_arrays(self.points())
        assert X.shape == (3, 1)
        assert list(y) == [1, 0, 1]

    def test_to_arrays_empty_rejected(self):
        with pytest.raises(ValueError):
            to_arrays([])

    def test_shift_timestamps(self):
        shifted = shift_timestamps(self.points(), 1000.0)
        assert [p.timestamp for p in shifted] == [1100.0, 1200.0, 1300.0]
        # Original untouched.
        assert self.points()[0].timestamp == 100.0
