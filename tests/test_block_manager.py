"""Tests for block/replica bookkeeping and file-level tier queries."""

import pytest

from repro.cluster import StorageTier, build_local_cluster
from repro.common.errors import ReplicaNotFoundError
from repro.common.units import MB
from repro.dfs.block import split_into_block_sizes
from repro.dfs.block_manager import BlockManager
from repro.dfs.namespace import FSDirectory


@pytest.fixture
def setup():
    topo = build_local_cluster(num_workers=3)
    manager = BlockManager(topo)
    fs = FSDirectory()
    file = fs.create_file("/f", creation_time=0.0, size=256 * MB, replication=2)
    return topo, manager, file


def first_device(topo, node_index, tier):
    node = topo.nodes[node_index]
    return node.devices(tier)[0]


class TestSplitIntoBlocks:
    def test_exact_multiple(self):
        assert split_into_block_sizes(256 * MB, 128 * MB) == [128 * MB, 128 * MB]

    def test_partial_tail(self):
        assert split_into_block_sizes(200 * MB, 128 * MB) == [128 * MB, 72 * MB]

    def test_small_file_single_block(self):
        assert split_into_block_sizes(5 * MB, 128 * MB) == [5 * MB]

    def test_empty_file(self):
        assert split_into_block_sizes(0, 128 * MB) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_into_block_sizes(-1, 128)
        with pytest.raises(ValueError):
            split_into_block_sizes(10, 0)


class TestReplicaLifecycle:
    def test_add_replica_charges_device(self, setup):
        topo, manager, file = setup
        block = manager.allocate_block(file, 0, 128 * MB)
        device = first_device(topo, 0, StorageTier.MEMORY)
        replica = manager.add_replica(
            block, topo.nodes[0].node_id, StorageTier.MEMORY, device.device_id
        )
        assert device.used == 128 * MB
        assert block.replica_count == 1
        assert manager.replica(replica.replica_id) is replica

    def test_remove_replica_releases_device(self, setup):
        topo, manager, file = setup
        block = manager.allocate_block(file, 0, 128 * MB)
        device = first_device(topo, 0, StorageTier.MEMORY)
        replica = manager.add_replica(
            block, topo.nodes[0].node_id, StorageTier.MEMORY, device.device_id
        )
        manager.remove_replica(replica)
        assert device.used == 0
        assert block.replica_count == 0
        with pytest.raises(ReplicaNotFoundError):
            manager.replica(replica.replica_id)

    def test_double_remove_rejected(self, setup):
        topo, manager, file = setup
        block = manager.allocate_block(file, 0, MB)
        device = first_device(topo, 0, StorageTier.SSD)
        replica = manager.add_replica(
            block, topo.nodes[0].node_id, StorageTier.SSD, device.device_id
        )
        manager.remove_replica(replica)
        with pytest.raises(ReplicaNotFoundError):
            manager.remove_replica(replica)

    def test_remove_file_blocks_cleans_everything(self, setup):
        topo, manager, file = setup
        for i in range(2):
            block = manager.allocate_block(file, i, 128 * MB)
            device = first_device(topo, i, StorageTier.HDD)
            manager.add_replica(
                block, topo.nodes[i].node_id, StorageTier.HDD, device.device_id
            )
        removed = manager.remove_file_blocks(file)
        assert len(removed) == 2
        assert manager.block_count() == 0
        assert manager.replica_count() == 0
        assert file.block_ids == []
        assert all(d.used == 0 for n in topo.nodes for d in n.devices())

    def test_replicas_on_index(self, setup):
        topo, manager, file = setup
        block = manager.allocate_block(file, 0, MB)
        node = topo.nodes[1]
        device = node.devices(StorageTier.MEMORY)[0]
        manager.add_replica(block, node.node_id, StorageTier.MEMORY, device.device_id)
        assert len(manager.replicas_on(node.node_id, StorageTier.MEMORY)) == 1
        assert manager.replicas_on(node.node_id, StorageTier.HDD) == []


class TestFileTierQueries:
    def place(self, manager, topo, file, layout):
        """layout: list per block of list of (node_idx, tier)."""
        for i, block_layout in enumerate(layout):
            block = manager.allocate_block(file, i, 64 * MB)
            for node_idx, tier in block_layout:
                node = topo.nodes[node_idx]
                device = node.devices(tier)[0]
                manager.add_replica(block, node.node_id, tier, device.device_id)

    def test_file_tiers_is_intersection(self, setup):
        topo, manager, file = setup
        self.place(
            manager,
            topo,
            file,
            [
                [(0, StorageTier.MEMORY), (1, StorageTier.HDD)],
                [(0, StorageTier.SSD), (1, StorageTier.HDD)],
            ],
        )
        # Only HDD holds *every* block.
        assert manager.file_tiers(file) == {StorageTier.HDD}
        assert manager.file_best_tier(file) is StorageTier.HDD
        assert not manager.file_has_tier(file, StorageTier.MEMORY)

    def test_file_has_tier_or_better(self, setup):
        topo, manager, file = setup
        self.place(
            manager,
            topo,
            file,
            [[(0, StorageTier.MEMORY)], [(1, StorageTier.MEMORY)]],
        )
        assert manager.file_has_tier_or_better(file, StorageTier.SSD)
        assert manager.file_has_tier_or_better(file, StorageTier.MEMORY)

    def test_empty_file_has_no_tiers(self, setup):
        _, manager, file = setup
        assert manager.file_tiers(file) == set()
        assert manager.file_best_tier(file) is None

    def test_bytes_on_tier(self, setup):
        topo, manager, file = setup
        self.place(
            manager,
            topo,
            file,
            [[(0, StorageTier.MEMORY), (1, StorageTier.MEMORY)]],
        )
        assert manager.file_bytes_on_tier(file, StorageTier.MEMORY) == 128 * MB
        assert manager.file_bytes_on_tier(file, StorageTier.SSD) == 0


class TestReplicationHealth:
    def test_under_and_over_replicated(self, setup):
        topo, manager, file = setup  # replication factor 2
        block = manager.allocate_block(file, 0, MB)
        device = first_device(topo, 0, StorageTier.HDD)
        manager.add_replica(
            block, topo.nodes[0].node_id, StorageTier.HDD, device.device_id
        )
        assert manager.under_replicated([file]) == [block]
        assert manager.over_replicated([file]) == []
        for idx in (1, 2):
            device = first_device(topo, idx, StorageTier.HDD)
            manager.add_replica(
                block, topo.nodes[idx].node_id, StorageTier.HDD, device.device_id
            )
        assert manager.under_replicated([file]) == []
        assert manager.over_replicated([file]) == [block]
