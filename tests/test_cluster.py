"""Tests for nodes, topology, and cluster builders."""

import pytest

from repro.cluster import (
    ClusterTopology,
    Node,
    StorageTier,
    TierProvision,
    build_cluster,
    build_ec2_cluster,
    build_local_cluster,
)
from repro.common.units import GB


def two_tier_node(node_id="n0", rack="r0"):
    return Node(
        node_id,
        rack,
        [
            TierProvision(StorageTier.MEMORY, 4 * GB),
            TierProvision(StorageTier.HDD, 12 * GB, num_devices=3),
        ],
    )


class TestNode:
    def test_devices_per_tier(self):
        node = two_tier_node()
        assert len(node.devices(StorageTier.MEMORY)) == 1
        assert len(node.devices(StorageTier.HDD)) == 3
        assert len(node.devices()) == 4

    def test_tier_capacity_split_across_devices(self):
        node = two_tier_node()
        assert node.tier_capacity(StorageTier.HDD) == 12 * GB
        for device in node.devices(StorageTier.HDD):
            assert device.capacity == 4 * GB

    def test_missing_tier(self):
        node = two_tier_node()
        assert not node.has_tier(StorageTier.SSD)
        assert node.tier_utilization(StorageTier.SSD) == 1.0
        assert node.tiers() == [StorageTier.MEMORY, StorageTier.HDD]

    def test_best_device_prefers_emptiest(self):
        node = two_tier_node()
        first = node.devices(StorageTier.HDD)[0]
        first.allocate(1, 1 * GB)
        best = node.best_device_for(StorageTier.HDD, 1 * GB)
        assert best is not first

    def test_best_device_none_when_full(self):
        node = two_tier_node()
        assert node.best_device_for(StorageTier.MEMORY, 5 * GB) is None

    def test_utilization_aggregates(self):
        node = two_tier_node()
        node.devices(StorageTier.MEMORY)[0].allocate(1, 1 * GB)
        assert node.tier_utilization(StorageTier.MEMORY) == pytest.approx(0.25)
        assert node.total_used() == 1 * GB


class TestTopology:
    def test_distance_semantics(self):
        topo = ClusterTopology()
        a = two_tier_node("a", "r0")
        b = two_tier_node("b", "r0")
        c = two_tier_node("c", "r1")
        for node in (a, b, c):
            topo.add_node(node)
        assert topo.distance(a, a) == ClusterTopology.SAME_NODE
        assert topo.distance(a, b) == ClusterTopology.SAME_RACK
        assert topo.distance(a, c) == ClusterTopology.OFF_RACK

    def test_duplicate_node_rejected(self):
        topo = ClusterTopology()
        topo.add_node(two_tier_node("a"))
        with pytest.raises(ValueError):
            topo.add_node(two_tier_node("a"))

    def test_capacity_aggregation(self):
        topo = ClusterTopology()
        for i in range(3):
            topo.add_node(two_tier_node(f"n{i}"))
        assert topo.tier_capacity(StorageTier.MEMORY) == 12 * GB
        assert topo.tier_utilization(StorageTier.SSD) == 1.0

    def test_lookup(self):
        topo = ClusterTopology()
        topo.add_node(two_tier_node("n1"))
        assert "n1" in topo
        assert topo.node("n1").node_id == "n1"
        assert len(topo) == 1


class TestBuilders:
    def test_local_cluster_matches_paper(self):
        topo = build_local_cluster()
        assert len(topo) == 11
        node = topo.nodes[0]
        assert node.tier_capacity(StorageTier.MEMORY) == 4 * GB
        assert node.tier_capacity(StorageTier.SSD) == 64 * GB
        assert node.tier_capacity(StorageTier.HDD) == 400 * GB
        assert len(node.devices(StorageTier.HDD)) == 3
        assert node.task_slots == 8

    def test_racks_filled_in_order(self):
        topo = build_cluster(
            8,
            [TierProvision(StorageTier.HDD, 1 * GB)],
            rack_size=3,
        )
        racks = {n.rack for n in topo.nodes}
        assert racks == {"rack0", "rack1", "rack2"}

    def test_ec2_cluster_scales_workers(self):
        topo = build_ec2_cluster(22)
        assert len(topo) == 22

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            build_cluster(0, [TierProvision(StorageTier.HDD, GB)])

    def test_total_slots(self):
        topo = build_local_cluster(num_workers=4, task_slots=6)
        assert topo.total_task_slots() == 24
