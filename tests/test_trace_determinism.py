"""The observability layer's two determinism contracts.

1. **Zero observer effect**: enabling ``obs.trace`` must leave every
   simulated metric of a run bit-identical — tracing only appends to a
   Python list, schedules no simulator events, and consumes no RNG.
   Checked across both engines and both I/O pricing models.
2. **Byte determinism**: the same seed must produce the byte-identical
   JSONL trace, run after run (the canonical encoding sorts keys and
   strips whitespace, and records carry only simulated time + seq).

Timeseries sampling (``obs.sample_interval``) is read-only for the
*workload* but does schedule simulator events, so its contract is
weaker: workload metrics identical, simulator perf counters exempt.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.runner import SystemConfig, WorkloadRunner
from repro.obs.export import trace_line
from repro.workload.scenarios import build_scenario


def _run(io_model="snapshot", engine="reference", seed=17, conf=None, scale=0.05):
    stream = build_scenario("fb", seed=seed, scale=scale)
    config = SystemConfig(
        label="obs-determinism",
        placement="octopus",
        downgrade="lru",
        upgrade="osa",
        io_model=io_model,
        seed=seed,
        engine_mode=engine,
        conf=dict(conf or {}),
    )
    runner = WorkloadRunner(stream, config)
    result = runner.run()
    return runner, result


def _full_fingerprint(runner, result):
    """Every deterministic outcome, simulator counters included."""
    sim = runner.sim
    return {
        "events_processed": sim.events_processed,
        "events_cancelled": sim.events_cancelled,
        "max_heap_size": sim.max_heap_size,
        "heap_compactions": sim.heap_compactions,
        **_workload_fingerprint(result),
    }


def _workload_fingerprint(result):
    """Simulated workload outcomes only (no simulator perf counters)."""
    return {
        "jobs_submitted": result.jobs_submitted,
        "jobs_finished": result.jobs_finished,
        "deletions_applied": result.deletions_applied,
        "hit_ratio": result.metrics.hit_ratio(),
        "byte_hit_ratio": result.metrics.byte_hit_ratio(),
        "task_seconds": result.metrics.total_task_seconds(),
        "bytes_read": result.metrics.bytes_read,
        "bytes_written": result.metrics.bytes_written,
        "transfers_committed": result.transfers_committed,
        "elapsed": result.elapsed,
        "queue_delay": dict(result.queue_delay_by_tier),
    }


class TestTraceObserverEffect:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    @pytest.mark.parametrize("io_model", ["snapshot", "fairshare"])
    def test_trace_on_changes_no_metric(self, engine, io_model):
        plain_runner, plain = _run(io_model=io_model, engine=engine)
        traced_runner, traced = _run(
            io_model=io_model, engine=engine, conf={"obs.trace": True}
        )
        assert _full_fingerprint(traced_runner, traced) == _full_fingerprint(
            plain_runner, plain
        )
        assert plain_runner.tracer is None
        assert traced_runner.tracer is not None
        assert traced_runner.tracer.records

    def test_timeseries_changes_no_workload_metric(self):
        plain_runner, plain = _run()
        sampled_runner, sampled = _run(conf={"obs.sample_interval": 600.0})
        assert _workload_fingerprint(sampled) == _workload_fingerprint(plain)
        assert sampled_runner.timeseries is not None
        assert sampled_runner.timeseries.samples >= 2


class TestTraceByteDeterminism:
    @settings(max_examples=3, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_same_seed_same_bytes(self, seed):
        runs = [
            _run(seed=seed, conf={"obs.trace": True})[0] for _ in range(2)
        ]
        payloads = [
            "\n".join(trace_line(r) for r in runner.tracer.records)
            for runner in runs
        ]
        assert payloads[0].encode() == payloads[1].encode()

    def test_engines_agree_on_trace_bytes(self):
        # The fast engine changes event storage and pump batching but
        # not decision order, so the decision trace must match too.
        reference = _run(engine="reference", conf={"obs.trace": True})[0]
        fast = _run(engine="fast", conf={"obs.trace": True})[0]
        assert [trace_line(r) for r in reference.tracer.records] == [
            trace_line(r) for r in fast.tracer.records
        ]

    def test_trace_unaffected_by_timeseries(self):
        traced = _run(conf={"obs.trace": True})[0]
        both = _run(
            conf={"obs.trace": True, "obs.sample_interval": 600.0}
        )[0]
        assert [trace_line(r) for r in traced.tracer.records] == [
            trace_line(r) for r in both.tracer.records
        ]
