"""Tests for the scheduler's tier-awareness knob."""

from repro.common.units import MB
from repro.engine import SystemConfig, WorkloadRunner
from repro.workload import FileCreation, Trace, TraceJob


def single_read_trace():
    trace = Trace(name="t", duration=100.0)
    trace.creations = [FileCreation("/in", 128 * MB, 0.0)]
    trace.jobs = [
        TraceJob(0, 1.0, ["/in"], 128 * MB, [], cpu_seconds_per_byte=0.0)
    ]
    return trace


class TestTierAwareness:
    def test_tier_aware_reads_from_memory_on_idle_cluster(self):
        runner = WorkloadRunner(
            single_read_trace(),
            SystemConfig(label="aware", placement="octopus", workers=6,
                         tier_aware_scheduler=True),
        )
        result = runner.run()
        assert result.metrics.task_reads_memory == 1

    def test_tier_unaware_still_achieves_locality(self):
        runner = WorkloadRunner(
            single_read_trace(),
            SystemConfig(label="stock", placement="octopus", workers=6,
                         tier_aware_scheduler=False),
        )
        result = runner.run()
        # The task lands on *a* replica node (local read), though not
        # necessarily the memory one.
        assert result.metrics.task_reads == 1
        assert result.metrics.bytes_read == 128 * MB

    def test_aware_memory_hits_dominate_unaware(self):
        # Many single-block files: aware scheduling should read from
        # memory at least as often as the stock scheduler.
        trace = Trace(name="t", duration=300.0)
        trace.creations = [FileCreation(f"/f{i}", 128 * MB, 0.0) for i in range(12)]
        trace.jobs = [
            TraceJob(i, 1.0 + i * 0.1, [f"/f{i}"], 128 * MB, [],
                     cpu_seconds_per_byte=1e-7)
            for i in range(12)
        ]
        results = {}
        for aware in (True, False):
            runner = WorkloadRunner(
                trace,
                SystemConfig(label=str(aware), placement="octopus", workers=4,
                             task_slots=2, tier_aware_scheduler=aware),
            )
            results[aware] = runner.run().metrics.hit_ratio()
        assert results[True] >= results[False]
