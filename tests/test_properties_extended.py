"""Property-based tests across the newer framework pieces.

Complements ``test_properties.py`` with invariants on the feature
pipeline, the SLRU-K ranking, the GDS credit algebra, the monitor's
capacity accounting under cache copies, and the fault injector.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager, configure_policies
from repro.core.slruk import backward_k_distance, eviction_rank
from repro.core.stats import FileStatistics
from repro.dfs import (
    DFSClient,
    FaultInjector,
    Master,
    NodeManager,
    OctopusPlacementPolicy,
)
from repro.dfs.namespace import INodeFile
from repro.dfs.placement import HdfsPlacementPolicy
from repro.ml.features import FeatureSpec, build_feature_vector
from repro.sim import Simulator


# -- feature pipeline ---------------------------------------------------------

sizes = st.integers(min_value=0, max_value=8 * GB)
time_points = st.floats(min_value=0.0, max_value=1e7)


@given(
    size=sizes,
    creation=time_points,
    gaps=st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=0, max_size=20
    ),
    horizon=st.floats(min_value=0.0, max_value=1e6),
)
@settings(max_examples=60)
def test_feature_vector_bounded_and_shaped(size, creation, gaps, horizon):
    """Every present feature lies in [0, 1]; missing ones are NaN."""
    spec = FeatureSpec()
    accesses = []
    t = creation
    for gap in gaps:
        t += gap
        accesses.append(t)
    reference = (accesses[-1] if accesses else creation) + horizon
    vec = build_feature_vector(spec, size, creation, accesses, reference)
    assert vec.shape == (spec.num_features,)
    present = vec[~np.isnan(vec)]
    assert np.all(present >= 0.0)
    assert np.all(present <= 1.0)


@given(
    k=st.integers(min_value=6, max_value=18),
    include_size=st.booleans(),
    include_creation=st.booleans(),
)
def test_feature_spec_length_matches_vector(k, include_size, include_creation):
    spec = FeatureSpec(
        k=k, include_size=include_size, include_creation=include_creation
    )
    vec = build_feature_vector(spec, 1 * MB, 0.0, [1.0, 2.0], 10.0)
    assert len(vec) == spec.num_features


# -- SLRU-K ranking ---------------------------------------------------------------


def _stats_with(accesses, k=12):
    file = INodeFile(inode_id=1, name="f", creation_time=0.0, size=MB)
    stats = FileStatistics(file, k=k)
    for t in accesses:
        stats.record_access(t)
    return stats


@given(
    accesses=st.lists(
        st.floats(min_value=0.0, max_value=1e5), min_size=0, max_size=12
    ),
    k=st.integers(min_value=1, max_value=12),
    dt=st.floats(min_value=0.0, max_value=1e5),
)
@settings(max_examples=60)
def test_k_distance_monotone_in_time(accesses, k, dt):
    """Waiting longer never makes a file look K-younger."""
    stats = _stats_with(sorted(accesses))
    now = 2e5
    d1 = backward_k_distance(stats, now, k)
    d2 = backward_k_distance(stats, now + dt, k)
    assert d2 >= d1 or (math.isinf(d1) and math.isinf(d2))


@given(
    accesses=st.lists(
        st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=12
    ),
)
@settings(max_examples=60)
def test_extra_access_never_raises_rank(accesses):
    """Another access can only make a file less evictable (k=2)."""
    ordered = sorted(accesses)
    now = 2e5
    before = eviction_rank(_stats_with(ordered), now, 2)
    after = eviction_rank(_stats_with(ordered + [1.5e5]), now, 2)
    assert after <= before


# -- monitor capacity accounting under cache copies ----------------------------------


@given(n_files=st.integers(min_value=1, max_value=8))
@settings(max_examples=10, deadline=None)
def test_cache_copies_never_overcommit_memory(n_files):
    sim = Simulator()
    topo = build_local_cluster(num_workers=3, memory_per_node=512 * MB)
    nm = NodeManager(topo)
    conf = Configuration({"manager.cache_mode": True, "downgrade.action": "delete"})
    master = Master(topo, HdfsPlacementPolicy(topo, nm, conf), sim, conf)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim, conf)
    configure_policies(manager, downgrade="lru", upgrade="osa")
    for i in range(n_files):
        client.create(f"/f{i}", 256 * MB)
        client.open(f"/f{i}")
        sim.run(until=sim.now() + 30)
    sim.run(until=sim.now() + 600)
    for node in topo.nodes:
        for device in node.devices(StorageTier.MEMORY):
            assert 0 <= device.used <= device.capacity


# -- fault injector ----------------------------------------------------------------


@given(
    fail_order=st.permutations([0, 1, 2]),
)
@settings(max_examples=10, deadline=None)
def test_replication_invariant_after_any_single_failure(fail_order):
    """After one failure + repair, every block is back to 3 replicas."""
    sim = Simulator()
    topo = build_local_cluster(num_workers=5, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    conf = Configuration({"monitor.health_checks_enabled": True})
    master = Master(topo, OctopusPlacementPolicy(topo, nm, conf), sim, conf)
    client = DFSClient(master)
    ReplicationManager(master, sim, conf)  # registers the health monitor
    injector = FaultInjector(sim, master)
    for i in range(3):
        client.create(f"/f{i}", 128 * MB)
    victim = f"worker{fail_order[0]:03d}"
    injector.fail(victim)
    sim.run(until=sim.now() + 400)
    for file in master.files():
        for block in master.blocks.blocks_of(file):
            assert block.replica_count == file.replication
            assert victim not in block.nodes()
