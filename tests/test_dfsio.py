"""Tests for the DFSIO benchmark runner (Fig 2 machinery)."""


from repro.common.units import GB
from repro.engine import DfsioRunner, SystemConfig
from repro.workload import DfsioSpec


def run_dfsio(placement, downgrade=None, upgrade=None, total=8 * GB, workers=4):
    config = SystemConfig(
        label=placement,
        placement=placement,
        downgrade=downgrade,
        upgrade=upgrade,
        workers=workers,
    )
    runner = DfsioRunner(config, DfsioSpec(total_bytes=total, file_size=1 * GB))
    return runner, runner.run()


class TestDfsioSpec:
    def test_file_paths(self):
        spec = DfsioSpec(total_bytes=4 * GB, file_size=1 * GB)
        assert spec.num_files == 4
        assert len(spec.file_paths()) == 4


class TestDfsioRunner:
    def test_writes_all_files(self):
        runner, result = run_dfsio("hdfs")
        assert len(result.write_records) == 8
        assert len(result.read_records) == 8

    def test_throughput_curves_nonempty(self):
        _, result = run_dfsio("octopus")
        writes = result.write_curve(num_nodes=4)
        reads = result.read_curve(num_nodes=4)
        assert writes and reads
        assert all(mbps > 0 for _, mbps in writes)

    def test_octopus_beats_hdfs_while_memory_lasts(self):
        _, hdfs = run_dfsio("hdfs")
        _, octo = run_dfsio("octopus")
        hdfs_write = hdfs.write_curve(4)[0][1]
        octo_write = octo.write_curve(4)[0][1]
        assert octo_write > hdfs_write
        hdfs_read = hdfs.read_curve(4)[0][1]
        octo_read = octo.read_curve(4)[0][1]
        assert octo_read > 1.5 * hdfs_read

    def test_octopus_read_degrades_after_memory_full(self):
        # 4 workers x 4GB memory = 16GB; write 24GB so memory exhausts.
        _, octo = run_dfsio("octopus", total=24 * GB)
        curve = octo.read_curve(4)
        early = curve[0][1]
        late = curve[-1][1]
        assert late < early  # later files lack memory replicas

    def test_octopuspp_downgrades_keep_writes_fast(self):
        runner_plain, plain = run_dfsio("octopus", total=24 * GB)
        runner_managed, managed = run_dfsio("octopus", downgrade="lru", total=24 * GB)
        # With proactive downgrades the memory tier never saturates, so
        # late writes still get a memory replica and throughput does not
        # degrade relative to the unmanaged system (both pipelines carry
        # one HDD leg, which pins the absolute rate).
        plain_late = plain.write_curve(4)[-1][1]
        managed_late = managed.write_curve(4)[-1][1]
        assert managed_late >= 0.9 * plain_late
        monitor = runner_managed.runner.manager.monitor
        from repro.cluster import StorageTier

        assert monitor.bytes_downgraded[StorageTier.MEMORY] > 0
        util = runner_managed.runner.master.tier_utilization(StorageTier.MEMORY)
        assert util <= 0.95
