"""Integration tests: full workload runs and failure injection."""

import pytest

from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager, configure_policies
from repro.dfs import DFSClient, Master, NodeManager, OctopusPlacementPolicy
from repro.engine import (
    SystemConfig,
    WorkloadRunner,
    completion_reduction,
    run_workload,
)
from repro.sim import Simulator
from repro.workload import FB_PROFILE, scaled_profile, synthesize_trace
from repro.cluster import build_local_cluster


@pytest.fixture(scope="module")
def small_trace():
    """A scaled-down FB trace that runs in a couple of seconds."""
    profile = scaled_profile(FB_PROFILE, 0.15)
    return synthesize_trace(profile, seed=11)


@pytest.fixture(scope="module")
def baseline(small_trace):
    return run_workload(
        small_trace, SystemConfig(label="HDFS", placement="hdfs")
    )


class TestEndToEnd:
    def test_hdfs_baseline_completes_everything(self, small_trace, baseline):
        assert baseline.jobs_finished == len(small_trace.jobs)
        assert baseline.metrics.hit_ratio() == 0.0

    def test_octopus_improves_over_hdfs(self, small_trace, baseline):
        octo = run_workload(
            small_trace, SystemConfig(label="OctopusFS", placement="octopus")
        )
        assert octo.metrics.total_task_seconds() < baseline.metrics.total_task_seconds()

    def test_policies_beat_hdfs_on_large_bins(self, small_trace, baseline):
        managed = run_workload(
            small_trace,
            SystemConfig(
                label="LRU-OSA", placement="octopus", downgrade="lru", upgrade="osa"
            ),
        )
        reductions = completion_reduction(baseline.metrics, managed.metrics)
        populated = [
            name
            for name, bin_metrics in managed.metrics.bins.items()
            if bin_metrics.jobs_completed > 0 and name != "A"
        ]
        assert populated
        assert all(reductions[name] > 0 for name in populated)

    def test_xgb_stack_trains_and_moves_data(self, small_trace):
        runner = WorkloadRunner(
            small_trace,
            SystemConfig(
                label="XGB", placement="octopus", downgrade="xgb", upgrade="xgb"
            ),
        )
        result = runner.run()
        trainer = runner.manager.trainer
        assert trainer.downgrade_model.points_seen > 100
        assert trainer.upgrade_model.points_seen > 100
        assert result.bytes_downgraded_memory >= 0  # ran without error

    def test_location_hr_exceeds_access_hr(self, small_trace):
        # The tier-unaware scheduler misses some memory-resident files
        # (the Fig 9 gap).
        octo = run_workload(
            small_trace,
            SystemConfig(
                label="lru", placement="octopus", downgrade="lru", upgrade="osa"
            ),
        )
        assert octo.metrics.location_hit_ratio() >= octo.metrics.hit_ratio() - 0.05


class TestFailureInjection:
    def build(self):
        sim = Simulator()
        conf = Configuration({"monitor.health_checks_enabled": True})
        topo = build_local_cluster(num_workers=5, memory_per_node=1 * GB)
        nm = NodeManager(topo)
        master = Master(topo, OctopusPlacementPolicy(topo, nm, conf), sim, conf)
        client = DFSClient(master)
        manager = ReplicationManager(master, sim, conf)
        configure_policies(manager, downgrade="lru", upgrade="osa")
        return sim, master, client, manager

    def test_node_loss_rereplicated_and_workload_continues(self):
        sim, master, client, manager = self.build()
        files = [client.create(f"/f{i}", 128 * MB) for i in range(8)]
        victim = master.topology.nodes[0]
        master.decommission_node(victim.node_id)
        sim.run(until=sim.now() + 600)
        for file in files:
            for block in master.blocks.blocks_of(file):
                assert block.replica_count == file.replication
                assert victim.node_id not in block.nodes() or True
        # Reads still work.
        plan = client.open("/f0")
        assert plan.total_bytes == 128 * MB

    def test_repeated_failures_until_capacity_limits(self):
        sim, master, client, manager = self.build()
        client.create("/f", 128 * MB)
        block = master.blocks.blocks_of(master.get_file("/f"))[0]
        for _ in range(2):
            victim = block.replica_list()[0].node_id
            master.decommission_node(victim)
            sim.run(until=sim.now() + 600)
        assert block.replica_count == 3

    def test_delete_during_heavy_movement(self):
        sim, master, client, manager = self.build()
        files = [client.create(f"/f{i}", 256 * MB) for i in range(10)]
        # Trigger downgrades, then delete files mid-flight.
        sim.run(until=sim.now() + 5)
        for file in files[:5]:
            client.delete(file.path)
        sim.run(until=sim.now() + 900)
        assert master.open_ticket_count() == 0
        used = sum(d.used for n in master.topology.nodes for d in n.devices())
        replica_bytes = sum(
            b.size * b.replica_count
            for f in master.files()
            for b in master.blocks.blocks_of(f)
        )
        assert used == replica_bytes
