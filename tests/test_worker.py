"""Tests for the worker facade: block reports and transfer timing."""


from repro.cluster import StorageTier
from repro.common.units import MB
from repro.dfs import Worker


class TestWorker:
    def test_block_report_lists_local_replicas(self, master):
        master.create_file("/f", 128 * MB)
        reports = []
        for node in master.topology.nodes:
            worker = Worker(node, master.blocks)
            reports.extend(worker.block_report())
        assert len(reports) == 3  # one block, three replicas cluster-wide

    def test_block_report_tier_filter(self, master):
        master.create_file("/f", 128 * MB)
        total_mem = sum(
            len(Worker(n, master.blocks).block_report(StorageTier.MEMORY))
            for n in master.topology.nodes
        )
        assert total_mem == 1

    def test_stored_bytes(self, master):
        master.create_file("/f", 128 * MB)
        total = sum(
            Worker(n, master.blocks).stored_bytes(StorageTier.MEMORY)
            for n in master.topology.nodes
        )
        assert total == 128 * MB

    def test_transfer_time_local_vs_remote(self, master):
        worker = Worker(master.topology.nodes[0], master.blocks)
        local = worker.transfer_time(
            128 * MB, StorageTier.MEMORY, StorageTier.MEMORY, cross_node=False
        )
        remote = worker.transfer_time(
            128 * MB, StorageTier.MEMORY, StorageTier.MEMORY, cross_node=True
        )
        assert remote > local  # network cap slows the cross-node move

    def test_transfer_time_bottlenecked_by_slowest_medium(self, master):
        worker = Worker(master.topology.nodes[0], master.blocks)
        to_hdd = worker.transfer_time(
            128 * MB, StorageTier.MEMORY, StorageTier.HDD, cross_node=False
        )
        to_ssd = worker.transfer_time(
            128 * MB, StorageTier.MEMORY, StorageTier.SSD, cross_node=False
        )
        assert to_hdd > to_ssd
