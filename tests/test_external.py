"""Tests for external trace ingestion (CSV/JSONL adapters)."""

import gzip

import pytest

from repro.engine.runner import SystemConfig, run_workload
from repro.workload.external import (
    ExternalTraceStream,
    detect_format,
    iter_csv_events,
    load_stream,
)
from repro.workload.jobs import FileCreation, FileDeletion, TraceJob
from repro.workload.profiles import FB_PROFILE, scaled_profile
from repro.workload.serialize import save_events
from repro.workload.streams import StreamOrderError
from repro.workload.synthesis import synthesize_trace

CSV_TEXT = """\
kind,time,path,bytes,inputs,output_path,output_bytes,cpu_seconds_per_byte
create,0.0,/data/a,134217728,,,,
create,10.0,/data/b,268435456,,,,
job,63.5,,,/data/a;/data/b,/out/j0,1048576,2.0e-8
job,120.0,,402653184,/data/a,,,
delete,7200.0,/data/a,,,,,
"""


def write_csv(tmp_path, text=CSV_TEXT, name="trace.csv"):
    path = tmp_path / name
    if name.endswith(".gz"):
        with gzip.open(path, "wt") as handle:
            handle.write(text)
    else:
        path.write_text(text)
    return str(path)


class TestFormatDetection:
    def test_known_extensions(self):
        assert detect_format("a.jsonl") == "jsonl"
        assert detect_format("a.jsonl.gz") == "jsonl"
        assert detect_format("b.csv") == "csv"
        assert detect_format("b.csv.gz") == "csv"

    def test_unknown_extension_rejected(self):
        with pytest.raises(ValueError, match="cannot infer"):
            detect_format("trace.parquet")


class TestCsvIngestion:
    def test_events_decoded(self, tmp_path):
        events = list(iter_csv_events(write_csv(tmp_path)))
        assert isinstance(events[0], FileCreation)
        assert events[0].size == 134217728
        job = events[2]
        assert isinstance(job, TraceJob)
        assert job.input_paths == ["/data/a", "/data/b"]
        assert job.outputs[0].path == "/out/j0"
        assert isinstance(events[4], FileDeletion)

    def test_stream_infers_missing_input_bytes(self, tmp_path):
        stream = ExternalTraceStream(write_csv(tmp_path))
        jobs = [e for e in stream if isinstance(e, TraceJob)]
        # First job omitted bytes: inferred from the created files.
        assert jobs[0].input_size == 134217728 + 268435456
        # Second job carried an explicit size: kept.
        assert jobs[1].input_size == 402653184

    def test_jobs_renumbered(self, tmp_path):
        stream = ExternalTraceStream(write_csv(tmp_path))
        assert [e.job_id for e in stream if isinstance(e, TraceJob)] == [0, 1]

    def test_gzip_round_trip(self, tmp_path):
        stream = ExternalTraceStream(write_csv(tmp_path, name="trace.csv.gz"))
        assert stream.stats().jobs == 2

    def test_duration_scanned(self, tmp_path):
        stream = ExternalTraceStream(write_csv(tmp_path))
        assert stream.duration == 7200.0

    def test_duration_scan_is_lazy(self, tmp_path):
        stream = ExternalTraceStream(write_csv(tmp_path))
        assert stream._duration is None, "no scan until duration is read"
        bounded = stream.stats(max_events=2)
        assert bounded.events == 2
        assert stream._duration is None, "bounded stats must not scan"
        full = stream.stats()
        assert stream._duration == full.last_time == 7200.0
        assert stream.duration == 7200.0

    def test_name_from_stem(self, tmp_path):
        assert ExternalTraceStream(write_csv(tmp_path)).name == "trace"

    def test_bad_kind_rejected(self, tmp_path):
        path = write_csv(tmp_path, "kind,time,path,bytes\nmunge,1.0,/a,5\n", "bad.csv")
        with pytest.raises(ValueError, match="bad.csv:2"):
            list(iter_csv_events(path))

    def test_out_of_order_rejected(self, tmp_path):
        text = "kind,time,path,bytes\ncreate,10.0,/a,5\ncreate,1.0,/b,5\n"
        stream = ExternalTraceStream(write_csv(tmp_path, text, "ooo.csv"))
        with pytest.raises(StreamOrderError):
            list(stream)


class TestJsonlIngestion:
    def test_round_trips_synthesized_trace(self, tmp_path):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=6)
        path = str(tmp_path / "fb.jsonl.gz")
        save_events(trace, path)
        stream = load_stream(path)
        assert stream.name == "FB"
        assert stream.duration == trace.duration
        assert list(stream.events()) == list(trace.events())

    def test_replay_matches_in_memory_trace(self, tmp_path):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=6)
        path = str(tmp_path / "fb.jsonl")
        save_events(trace, path)

        def config():
            return SystemConfig(
                label="ext",
                placement="octopus",
                downgrade="lru",
                upgrade="osa",
                workers=4,
            )

        direct = run_workload(trace, config())
        ingested = run_workload(load_stream(path), config())
        assert ingested.metrics.hit_ratio() == direct.metrics.hit_ratio()
        assert ingested.jobs_finished == direct.jobs_finished
        assert ingested.elapsed == direct.elapsed

    def test_explicit_format_and_duration(self, tmp_path):
        trace = synthesize_trace(scaled_profile(FB_PROFILE, 0.05), seed=6)
        path = str(tmp_path / "fb.jsonl")
        save_events(trace, path)
        stream = ExternalTraceStream(path, fmt="jsonl", duration=123.0, name="x")
        assert stream.duration == 123.0
        assert stream.name == "x"

    def test_unknown_format_rejected(self, tmp_path):
        path = str(tmp_path / "fb.jsonl")
        save_events([], path)
        with pytest.raises(ValueError, match="unknown trace format"):
            ExternalTraceStream(path, fmt="xml")
