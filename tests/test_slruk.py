"""Tests for the SLRU-K downgrade/upgrade pair (Big SQL, Sec 2.1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cluster import StorageTier, build_local_cluster
from repro.common.config import Configuration
from repro.common.units import GB, MB
from repro.core import ReplicationManager, configure_policies
from repro.core.slruk import (
    SlruKDowngradePolicy,
    SlruKUpgradePolicy,
    backward_k_distance,
    eviction_rank,
)
from repro.core.stats import FileStatistics
from repro.dfs import DFSClient, Master, NodeManager, OctopusPlacementPolicy
from repro.dfs.namespace import INodeFile
from repro.sim import Simulator


@pytest.fixture
def stack():
    sim = Simulator()
    topo = build_local_cluster(num_workers=3, memory_per_node=1 * GB)
    nm = NodeManager(topo)
    master = Master(topo, OctopusPlacementPolicy(topo, nm, Configuration()), sim)
    client = DFSClient(master)
    manager = ReplicationManager(master, sim)
    return sim, master, client, manager


def make_stats(creation=0.0, accesses=(), k=12):
    file = INodeFile(inode_id=1, name="f", creation_time=creation, size=MB)
    stats = FileStatistics(file, k=k)
    for t in accesses:
        stats.record_access(t)
    return stats


class TestBackwardKDistance:
    def test_infinite_below_k_accesses(self):
        stats = make_stats(accesses=[10.0])
        assert math.isinf(backward_k_distance(stats, now=100.0, k=2))

    def test_never_accessed_is_infinite(self):
        stats = make_stats()
        assert math.isinf(backward_k_distance(stats, now=100.0, k=1))

    def test_finite_distance_is_age_of_kth_access(self):
        stats = make_stats(accesses=[10.0, 40.0, 70.0])
        assert backward_k_distance(stats, now=100.0, k=2) == 100.0 - 40.0
        assert backward_k_distance(stats, now=100.0, k=1) == 100.0 - 70.0

    def test_distance_grows_with_time(self):
        stats = make_stats(accesses=[10.0, 40.0])
        d1 = backward_k_distance(stats, now=50.0, k=2)
        d2 = backward_k_distance(stats, now=90.0, k=2)
        assert d2 > d1

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=0, max_size=12
        ),
        k=st.integers(min_value=1, max_value=12),
    )
    def test_rank_total_order_components(self, times, k):
        """Ranks are always comparable tuples with class in {0, 1}."""
        stats = make_stats(accesses=sorted(times))
        rank = eviction_rank(stats, now=2e6, k=k)
        assert rank[0] in (0, 1)
        assert rank[1] >= 0.0


class TestSlruKDowngrade:
    def test_under_k_accessed_evicted_before_k_accessed(self, stack):
        sim, master, client, manager = stack
        policy = SlruKDowngradePolicy(manager.ctx, k=2)
        manager.set_downgrade_policy(policy)
        client.create("/once", 64 * MB)
        client.create("/twice", 64 * MB)
        sim.run(until=10)
        client.open("/once")
        client.open("/twice")
        sim.run(until=20)
        client.open("/twice")  # /twice now has 2 accesses, /once only 1
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected.path == "/once"

    def test_oldest_kth_access_evicted_among_k_accessed(self, stack):
        sim, master, client, manager = stack
        policy = SlruKDowngradePolicy(manager.ctx, k=2)
        manager.set_downgrade_policy(policy)
        client.create("/old", 64 * MB)
        client.create("/new", 64 * MB)
        client.open("/old")
        sim.run(until=5)
        client.open("/old")  # 2nd access at t=5
        sim.run(until=50)
        client.open("/new")
        sim.run(until=60)
        client.open("/new")  # 2nd access at t=60; K-dist anchored at t=50
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected.path == "/old"

    def test_lru_tie_break_among_infinite(self, stack):
        sim, master, client, manager = stack
        policy = SlruKDowngradePolicy(manager.ctx, k=3)
        manager.set_downgrade_policy(policy)
        client.create("/idle", 64 * MB)
        sim.run(until=30)
        client.create("/fresh", 64 * MB)
        sim.run(until=40)
        client.open("/fresh")
        selected = policy.select_file_to_downgrade(StorageTier.MEMORY)
        assert selected.path == "/idle"

    def test_empty_tier_returns_none(self, stack):
        _, _, _, manager = stack
        policy = SlruKDowngradePolicy(manager.ctx)
        assert policy.select_file_to_downgrade(StorageTier.MEMORY) is None

    def test_k_validation(self, stack):
        _, _, _, manager = stack
        with pytest.raises(ValueError):
            SlruKDowngradePolicy(manager.ctx, k=0)
        with pytest.raises(ValueError):
            SlruKDowngradePolicy(manager.ctx, k=manager.stats.k + 1)


class TestSlruKUpgrade:
    def test_admits_when_memory_has_room(self, stack):
        sim, master, client, manager = stack
        policy = SlruKUpgradePolicy(manager.ctx, k=2)
        manager.set_upgrade_policy(policy)
        # Place everything on HDD so the accessed file is below memory.
        file = client.create("/f", 64 * MB)
        for block in master.blocks.blocks_of(file):
            for replica in list(block.replicas_on_tier(StorageTier.MEMORY)):
                master.delete_replica(replica)
        assert policy.start_upgrade(file)

    def test_rejects_in_memory_file(self, stack):
        sim, master, client, manager = stack
        policy = SlruKUpgradePolicy(manager.ctx, k=2)
        file = client.create("/f", 64 * MB)
        assert master.blocks.file_has_tier(file, StorageTier.MEMORY)
        assert not policy.start_upgrade(file)

    def test_rejects_none(self, stack):
        _, _, _, manager = stack
        policy = SlruKUpgradePolicy(manager.ctx)
        assert not policy.start_upgrade(None)

    def test_admission_requires_beating_every_victim(self, stack):
        sim, master, client, manager = stack
        policy = SlruKUpgradePolicy(manager.ctx, k=2)
        manager.set_upgrade_policy(policy)
        # Fill memory with hot residents (2 accesses each, recent).
        for i in range(3):
            client.create(f"/resident{i}", 900 * MB)
        sim.run(until=10)
        for i in range(3):
            client.open(f"/resident{i}")
        sim.run(until=20)
        for i in range(3):
            client.open(f"/resident{i}")
        # Cold challenger on HDD with a single (infinite-distance) access.
        challenger = client.create("/challenger", 900 * MB)
        for block in master.blocks.blocks_of(challenger):
            for replica in list(block.replicas_on_tier(StorageTier.MEMORY)):
                master.delete_replica(replica)
        sim.run(until=30)
        assert manager.ctx.tier_free(StorageTier.MEMORY) < challenger.size
        assert not policy.start_upgrade(challenger)


class TestRegistryIntegration:
    def test_configure_both_sides(self, stack):
        _, _, _, manager = stack
        configure_policies(manager, downgrade="slru-k", upgrade="slru-k")
        assert manager.downgrade_policy.name == "slru-k"
        assert manager.upgrade_policy.name == "slru-k"

    def test_end_to_end_run(self, stack):
        sim, master, client, manager = stack
        configure_policies(manager, downgrade="slru-k", upgrade="slru-k")
        for i in range(20):
            client.create(f"/f{i}", 256 * MB)
            sim.run(until=sim.now() + 30)
        sim.run(until=sim.now() + 600)
        assert manager.monitor.bytes_downgraded[StorageTier.MEMORY] > 0
