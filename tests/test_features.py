"""Tests for the Sec 4.1 feature pipeline."""

import numpy as np
import pytest

from repro.common.units import DAYS, GB, HOURS, MB, MINUTES
from repro.ml.features import (
    FeatureSpec,
    build_feature_vector,
    feature_names,
    label_for_window,
)


class TestFeatureSpec:
    def test_default_dimensions(self):
        spec = FeatureSpec()  # k=12
        assert spec.num_features == 2 + 11 + 1 + 1  # deltas + anchors + size + creation

    def test_ablation_dimensions(self):
        assert (
            FeatureSpec(include_size=False).num_features
            == FeatureSpec().num_features - 1
        )
        assert (
            FeatureSpec(include_creation=False).num_features
            == FeatureSpec().num_features - 1
        )
        assert FeatureSpec(k=6).num_features == FeatureSpec().num_features - 6

    def test_names_align_with_vector(self):
        spec = FeatureSpec(k=4)
        names = feature_names(spec)
        vector = build_feature_vector(spec, 10 * MB, 0.0, [10.0, 20.0], 100.0)
        assert len(names) == len(vector) == spec.num_features


class TestBuildFeatureVector:
    def test_worked_example_structure(self):
        # Mirrors the paper's Fig 4: creation 8:00, accesses 9:20/9:50/11:10,
        # reference 11:30, size 200MB.
        spec = FeatureSpec(k=12, norm_interval=2 * DAYS, max_file_size=4 * GB)
        h = HOURS
        creation = 8 * h
        accesses = [9 * h + 20 * MINUTES, 9 * h + 50 * MINUTES, 11 * h + 10 * MINUTES]
        reference = 11 * h + 30 * MINUTES
        vector = build_feature_vector(spec, 200 * MB, creation, accesses, reference)
        # size normalized by 4GB
        assert vector[0] == pytest.approx(200 * MB / (4 * GB))
        # reference - creation = 3.5h
        assert vector[1] == pytest.approx(3.5 * h / (2 * DAYS))
        # reference - last access = 20min
        assert vector[2] == pytest.approx(20 * MINUTES / (2 * DAYS))
        # oldest access - creation = 80min
        assert vector[3] == pytest.approx(80 * MINUTES / (2 * DAYS))
        # most recent gap first: 11:10-9:50 = 80min, then 9:50-9:20 = 30min
        assert vector[4] == pytest.approx(80 * MINUTES / (2 * DAYS))
        assert vector[5] == pytest.approx(30 * MINUTES / (2 * DAYS))
        # remaining delta slots missing
        assert np.isnan(vector[6:]).all()

    def test_never_accessed_file(self):
        spec = FeatureSpec(k=4)
        vector = build_feature_vector(spec, MB, 0.0, [], 100.0)
        assert not np.isnan(vector[0])  # size
        assert not np.isnan(vector[1])  # ref - creation
        assert np.isnan(vector[2])  # ref - last access
        assert np.isnan(vector[3])  # oldest - creation
        assert np.isnan(vector[4:]).all()

    def test_future_accesses_excluded(self):
        spec = FeatureSpec(k=4)
        with_future = build_feature_vector(spec, MB, 0.0, [10.0, 50.0], 20.0)
        without = build_feature_vector(spec, MB, 0.0, [10.0], 20.0)
        assert np.allclose(with_future, without, equal_nan=True)

    def test_only_last_k_accesses_used(self):
        spec = FeatureSpec(k=3)
        accesses = [float(i) for i in range(10)]
        vector = build_feature_vector(spec, MB, 0.0, accesses, 20.0)
        # k=3 -> 2 delta slots, both present (from accesses 7,8,9)
        assert not np.isnan(vector[4])

    def test_normalization_clips_to_one(self):
        spec = FeatureSpec(k=4, norm_interval=60.0)
        vector = build_feature_vector(spec, 100 * GB, 0.0, [10.0], 1000.0)
        assert vector[0] == 1.0  # size clipped
        assert vector[1] == 1.0  # huge delta clipped

    def test_unsorted_accesses_handled(self):
        spec = FeatureSpec(k=4)
        a = build_feature_vector(spec, MB, 0.0, [30.0, 10.0, 20.0], 50.0)
        b = build_feature_vector(spec, MB, 0.0, [10.0, 20.0, 30.0], 50.0)
        assert np.allclose(a, b, equal_nan=True)

    def test_reference_before_creation_rejected(self):
        spec = FeatureSpec()
        with pytest.raises(ValueError):
            build_feature_vector(spec, MB, 100.0, [], 50.0)

    def test_ablation_flags_drop_columns(self):
        spec = FeatureSpec(k=4, include_size=False)
        vector = build_feature_vector(spec, MB, 0.0, [10.0], 20.0)
        # First entry is now ref-creation, not size.
        assert vector[0] == pytest.approx(20.0 / spec.norm_interval)


class TestLabelForWindow:
    def test_access_inside_window(self):
        assert label_for_window([105.0], 100.0, 10.0) == 1

    def test_access_at_boundary_included(self):
        assert label_for_window([110.0], 100.0, 10.0) == 1

    def test_access_at_reference_excluded(self):
        assert label_for_window([100.0], 100.0, 10.0) == 0

    def test_access_after_window_excluded(self):
        assert label_for_window([111.0], 100.0, 10.0) == 0

    def test_no_accesses(self):
        assert label_for_window([], 100.0, 10.0) == 0
