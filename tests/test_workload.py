"""Tests for bins, the trace model, and the FB/CMU synthesizers."""

import numpy as np
import pytest

from repro.common.units import GB, MB
from repro.workload import (
    BINS,
    CMU_PROFILE,
    FB_PROFILE,
    FileCreation,
    OutputSpec,
    Trace,
    TraceJob,
    bin_for_size,
    scaled_profile,
    synthesize_trace,
)


class TestBins:
    def test_bin_boundaries(self):
        assert bin_for_size(0).name == "A"
        assert bin_for_size(128 * MB - 1).name == "A"
        assert bin_for_size(128 * MB).name == "B"
        assert bin_for_size(1 * GB).name == "D"
        assert bin_for_size(5 * GB).name == "F"

    def test_oversize_clamps_to_last(self):
        assert bin_for_size(100 * GB).name == "F"

    def test_bins_are_contiguous(self):
        for prev, nxt in zip(BINS, BINS[1:]):
            assert prev.high == nxt.low


class TestTraceModel:
    def make_trace(self):
        trace = Trace(name="t", duration=100.0)
        trace.creations.append(FileCreation("/in1", 10 * MB, 1.0))
        trace.creations.append(FileCreation("/in2", 20 * MB, 2.0))
        trace.creations.append(FileCreation("/cold", 5 * MB, 3.0))
        trace.jobs.append(
            TraceJob(0, 10.0, ["/in1"], 10 * MB, [OutputSpec("/out0", 2 * MB)])
        )
        trace.jobs.append(TraceJob(1, 20.0, ["/in1", "/in2"], 30 * MB))
        return trace

    def test_events_merged_in_order(self):
        trace = self.make_trace()
        times = []
        for event in trace.events():
            times.append(getattr(event, "time", None) or getattr(event, "submit_time"))
        assert times == sorted(times)

    def test_access_counts(self):
        counts = self.make_trace().access_counts()
        assert counts["/in1"] == 2
        assert counts["/in2"] == 1
        assert counts["/cold"] == 0
        assert counts["/out0"] == 0

    def test_never_read_fraction(self):
        assert self.make_trace().never_read_fraction() == pytest.approx(0.5)

    def test_totals(self):
        trace = self.make_trace()
        assert trace.file_count == 4
        assert trace.total_bytes == 37 * MB

    def test_jobs_per_bin(self):
        assert self.make_trace().jobs_per_bin()["A"] == 2

    def test_cdf(self):
        values, probs = Trace.cdf([3, 1, 2])
        assert list(values) == [1, 2, 3]
        assert probs[-1] == 1.0


class TestSynthesizer:
    @pytest.fixture(scope="class")
    def fb(self):
        return synthesize_trace(FB_PROFILE, seed=42)

    @pytest.fixture(scope="class")
    def cmu(self):
        return synthesize_trace(CMU_PROFILE, seed=42)

    def test_job_counts(self, fb, cmu):
        assert len(fb.jobs) == 1000
        assert len(cmu.jobs) == 800

    def test_bin_distribution_shape(self, fb):
        bins = fb.jobs_per_bin()
        # Table 3: A dominates, counts decay with size.
        assert bins["A"] > bins["B"] > bins["C"]
        assert bins["A"] / len(fb.jobs) == pytest.approx(0.744, abs=0.08)

    def test_total_bytes_near_target(self, fb, cmu):
        assert 0.7 * 92 * GB < fb.total_bytes < 1.3 * 92 * GB
        assert 0.7 * 85 * GB < cmu.total_bytes < 1.3 * 85 * GB

    def test_never_read_fraction_near_target(self, fb, cmu):
        assert fb.never_read_fraction() == pytest.approx(0.23, abs=0.05)
        assert cmu.never_read_fraction() == pytest.approx(0.18, abs=0.05)

    def test_popularity_skew(self, fb):
        counts = [c for c in fb.access_counts().values() if c > 0]
        # A popular head exists, most files read only a few times.
        assert max(counts) > 10
        assert np.median(counts) <= 3

    def test_inputs_created_before_first_use(self, fb):
        created = {}
        for creation in fb.creations:
            created[creation.path] = creation.time
        for job in fb.jobs:
            for path in job.input_paths:
                if path in created:  # outputs handled separately
                    assert created[path] <= job.submit_time

    def test_chained_outputs_mature(self, fb):
        produced_at = {}
        for job in fb.jobs:
            for out in job.outputs:
                produced_at[out.path] = job.submit_time
        for job in fb.jobs:
            for path in job.input_paths:
                if path in produced_at:
                    assert produced_at[path] <= job.submit_time - 15 * 60.0

    def test_determinism(self):
        a = synthesize_trace(FB_PROFILE, seed=7)
        b = synthesize_trace(FB_PROFILE, seed=7)
        assert [j.submit_time for j in a.jobs] == [j.submit_time for j in b.jobs]
        assert [c.path for c in a.creations] == [c.path for c in b.creations]

    def test_seed_changes_trace(self):
        a = synthesize_trace(FB_PROFILE, seed=1)
        b = synthesize_trace(FB_PROFILE, seed=2)
        assert [j.submit_time for j in a.jobs] != [j.submit_time for j in b.jobs]

    def test_jobs_within_duration(self, fb):
        assert all(0 <= j.submit_time <= fb.duration for j in fb.jobs)

    def test_recurring_series_present(self, fb):
        # Some input files are read many times at near-regular intervals.
        reads = {}
        for job in fb.jobs:
            for path in job.input_paths:
                reads.setdefault(path, []).append(job.submit_time)
        periodic = 0
        for times in reads.values():
            if len(times) >= 5:
                gaps = np.diff(sorted(times))
                if len(gaps) and np.std(gaps) < 0.35 * np.mean(gaps):
                    periodic += 1
        assert periodic >= 10

    def test_scaled_profile(self):
        scaled = scaled_profile(FB_PROFILE, 2.0)
        assert scaled.num_jobs == 2000
        assert scaled.total_bytes == 2 * FB_PROFILE.total_bytes
        trace = synthesize_trace(scaled, seed=3)
        assert len(trace.jobs) == 2000

    def test_drift_off_is_stationary(self):
        trace = synthesize_trace(FB_PROFILE, seed=5, drift=False)
        assert len(trace.jobs) == 1000
