"""Tests for the online file-access predictor."""

import numpy as np
import pytest

from repro.common.units import MINUTES
from repro.ml.access_model import FileAccessModel, LearningMode
from repro.ml.gbt import GBTParams


def feed_periodic_pattern(model, n_files=40, periods=(600.0, 7200.0), horizon=20000.0):
    """Synthetic stream: files re-accessed with per-file period.

    Short-period files are accessed within any 30-minute window; the
    long-period files are not — a cleanly learnable rule.
    """
    t = 0.0
    while t < horizon:
        t += 60.0
        for i in range(n_files):
            period = periods[i % len(periods)]
            accesses = [x for x in np.arange(0.0, t + 1, period)][-12:]
            model.add_observation(
                size=64 * 2**20, creation_time=0.0, access_times=accesses, now=t
            )


class TestTrainingPointGeneration:
    def make(self, **kw):
        return FileAccessModel(window=30 * MINUTES, **kw)

    def test_reference_time_shifted_back(self):
        model = self.make()
        point = model.make_training_point(1, 0.0, [1000.0, 1900.0], now=2000.0)
        assert point is not None
        # Access at 1900 is inside (200, 2000] -> positive label.
        assert point.label == 1

    def test_negative_label_when_idle(self):
        model = self.make()
        point = model.make_training_point(1, 0.0, [10.0], now=10000.0)
        assert point is not None
        assert point.label == 0

    def test_none_when_file_younger_than_window(self):
        model = self.make()
        assert model.make_training_point(1, 1900.0, [], now=2000.0) is None

    def test_observation_counter(self):
        model = self.make()
        model.add_observation(1, 0.0, [], now=5000.0)
        assert model.points_seen == 1


class TestWarmupGating:
    def test_not_ready_without_data(self):
        model = FileAccessModel(window=1800.0)
        assert not model.ready
        assert model.predict_probability(1, 0.0, [], now=5000.0) is None

    def test_becomes_ready_on_learnable_stream(self):
        model = FileAccessModel(
            window=1800.0,
            gbt_params=GBTParams(num_rounds=5, max_depth=6),
            min_eval_points=10,
        )
        feed_periodic_pattern(model)
        assert model.is_fitted
        assert model.rolling_error_rate < 0.2
        assert model.ready

    def test_prediction_separates_hot_and_cold(self):
        model = FileAccessModel(
            window=1800.0,
            gbt_params=GBTParams(num_rounds=5, max_depth=6),
            min_eval_points=10,
        )
        feed_periodic_pattern(model)
        now = 21000.0
        # Hot: 10-minute period, next access well inside the 30min window.
        hot = model.predict_probability(
            64 * 2**20, 0.0, list(np.arange(0, now, 600.0)[-12:]), now
        )
        # Cold: 2-hour period, mid-cycle (next access ~1h away, outside
        # the window) — in-distribution for the training stream.
        cold_accesses = list(np.arange(0.0, now - 3500.0, 7200.0)[-12:])
        cold = model.predict_probability(64 * 2**20, 0.0, cold_accesses, now)
        assert hot is not None and cold is not None
        assert hot > cold

    def test_accuracy_history_recorded(self):
        model = FileAccessModel(
            window=1800.0, gbt_params=GBTParams(num_rounds=3, max_depth=4)
        )
        feed_periodic_pattern(model, horizon=8000.0)
        assert len(model.accuracy_history) > 0
        timestamps = [t for t, _ in model.accuracy_history]
        assert timestamps == sorted(timestamps)


class TestLearningModes:
    def test_retrain_mode_defers_training(self):
        model = FileAccessModel(window=1800.0, mode=LearningMode.RETRAIN)
        feed_periodic_pattern(model, horizon=4000.0)
        assert not model.is_fitted
        assert model.retrain()
        assert model.is_fitted

    def test_oneshot_trains_once(self):
        model = FileAccessModel(window=1800.0, mode=LearningMode.ONESHOT)
        feed_periodic_pattern(model, horizon=4000.0)
        assert model.train_now()
        trees_after_first = model.model.num_trees
        feed_periodic_pattern(model, horizon=4000.0)
        assert model.model.num_trees == trees_after_first

    def test_train_now_requires_both_classes(self):
        model = FileAccessModel(window=1800.0, mode=LearningMode.RETRAIN)
        # Only cold observations -> single class.
        for t in range(2000, 10000, 500):
            model.add_observation(1, 0.0, [10.0], now=float(t))
        assert not model.train_now()

    def test_dataset_export(self):
        model = FileAccessModel(window=1800.0, mode=LearningMode.RETRAIN)
        feed_periodic_pattern(model, horizon=3000.0)
        X, y, t = model.dataset()
        assert len(X) == len(y) == len(t) == model.points_seen

    def test_dataset_empty_raises(self):
        with pytest.raises(ValueError):
            FileAccessModel(window=60.0).dataset()


class TestCompaction:
    def test_tree_count_bounded(self):
        model = FileAccessModel(
            window=1800.0,
            gbt_params=GBTParams(num_rounds=5, max_depth=4, max_trees=20),
            batch_size=32,
        )
        feed_periodic_pattern(model, horizon=15000.0)
        # Compaction keeps the ensemble near the cap (fit + one increment).
        assert model.model.num_trees <= 20

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            FileAccessModel(window=0.0)
