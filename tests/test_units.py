"""Tests for byte/duration unit parsing and formatting."""

import pytest

from repro.common.units import (
    DAYS,
    GB,
    HOURS,
    KB,
    MB,
    MINUTES,
    TB,
    format_bytes,
    format_duration,
    parse_bytes,
    parse_duration,
)


class TestConstants:
    def test_byte_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB

    def test_duration_ladder(self):
        assert MINUTES == 60.0
        assert HOURS == 60 * MINUTES
        assert DAYS == 24 * HOURS


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("128MB", 128 * MB),
            ("128mb", 128 * MB),
            ("4g", 4 * GB),
            ("1.5k", int(1.5 * KB)),
            ("512", 512),
            ("0.5tb", int(0.5 * TB)),
            ("7b", 7),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "12qb", "-5m", "1 2 m"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_bytes(text)


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("30min", 30 * MINUTES),
            ("6h", 6 * HOURS),
            ("90s", 90.0),
            ("1.5hr", 1.5 * HOURS),
            ("250ms", 0.25),
            ("42", 42.0),
            ("2d", 2 * DAYS),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "fast", "10 parsecs"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_duration(text)


class TestFormat:
    def test_format_bytes_picks_suffix(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2 * KB) == "2.00KB"
        assert format_bytes(128 * MB) == "128.00MB"
        assert format_bytes(3 * GB) == "3.00GB"
        assert format_bytes(2 * TB) == "2.00TB"

    def test_format_duration_styles(self):
        assert format_duration(12.5) == "12.50s"
        assert format_duration(90) == "1m30.0s"
        assert format_duration(3725) == "1h02m05.0s"

    def test_format_duration_negative(self):
        assert format_duration(-30).startswith("-")

    def test_roundtrip(self):
        for value in (1, KB, 3 * MB, 7 * GB):
            assert parse_bytes(format_bytes(value)) == value
