"""Docstring-coverage gate: a dependency-free ``interrogate`` equivalent.

Walks every module under ``src/repro`` with ``ast`` (no imports needed)
and counts docstrings on the public surface: modules, public classes,
and public functions/methods (names not starting with ``_``; ``__init__``
is exempt — its contract belongs to the class docstring).  Two gates:

* **module docstrings must be at 100%** — every module narrates what it
  is and where it sits in the architecture (they are, today; keep it);
* **overall public-surface coverage ratchets** at the measured repo
  value (rounded down).  The ratchet should only ever be raised — new
  public code without docstrings fails CI instead of silently eroding
  the docs.

Usage::

    python tools/check_docstrings.py                 # gate at the ratchet
    python tools/check_docstrings.py --min-coverage 95
    python tools/check_docstrings.py --list-missing  # show what lacks docs
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"

#: The ratchet: measured repo-wide coverage, rounded down.  Raise it as
#: coverage improves; never lower it to merge undocumented code.
RATCHET = 69.5


def public_defs(path: Path) -> Iterator[Tuple[str, bool]]:
    """Yield (qualified name, has_docstring) for the public surface."""
    tree = ast.parse(path.read_text())
    module = str(path.relative_to(SOURCE_ROOT.parent)).replace("/", ".")[: -len(".py")]
    yield module, ast.get_docstring(tree) is not None

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if child.name.startswith("_"):
                    continue
                name = f"{prefix}.{child.name}"
                yield name, ast.get_docstring(child) is not None
                yield from walk(child, name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child.name.startswith("_"):
                    continue
                # Trivial overrides/callbacks whose body is a bare
                # docstring-less `pass`/`...` still count: silence is a
                # doc bug there too.
                yield f"{prefix}.{child.name}", ast.get_docstring(child) is not None

    yield from walk(tree, module)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-coverage", type=float, default=RATCHET)
    parser.add_argument(
        "--list-missing", action="store_true", help="print each undocumented def"
    )
    args = parser.parse_args(argv)

    per_module: List[Tuple[str, int, int]] = []
    missing: List[str] = []
    undocumented_modules: List[str] = []
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        defs = list(public_defs(path))
        documented = sum(1 for _, has in defs if has)
        per_module.append((str(path.relative_to(REPO_ROOT)), documented, len(defs)))
        missing.extend(name for name, has in defs if not has)
        if defs and not defs[0][1]:
            undocumented_modules.append(str(path.relative_to(REPO_ROOT)))

    total_doc = sum(d for _, d, _ in per_module)
    total = sum(t for _, _, t in per_module)
    coverage = 100.0 * total_doc / total if total else 100.0

    width = max(len(name) for name, _, _ in per_module)
    for name, documented, count in per_module:
        pct = 100.0 * documented / count if count else 100.0
        flag = "" if pct >= args.min_coverage else "  <-- below ratchet"
        print(f"{name:<{width}}  {documented:>3}/{count:<3} {pct:6.1f}%{flag}")
    print("-" * (width + 20))
    print(f"{'TOTAL':<{width}}  {total_doc:>3}/{total:<3} {coverage:6.1f}%")

    if args.list_missing and missing:
        print("\nundocumented public defs:")
        for name in missing:
            print(f"  {name}")

    failed = False
    if undocumented_modules:
        print(
            "modules without a module docstring (must be 100%): "
            f"{undocumented_modules}",
            file=sys.stderr,
        )
        failed = True
    if coverage < args.min_coverage:
        print(
            f"docstring coverage {coverage:.1f}% is below the ratchet "
            f"{args.min_coverage:.1f}% — document the new public surface "
            "(tools/check_docstrings.py --list-missing shows offenders)",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        f"docstring coverage: passed ({coverage:.1f}% >= "
        f"{args.min_coverage:.1f}%, module docstrings 100%)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
