"""CI smoke test for service mode: start, serve two tenants, drain.

Exercises the daemon exactly as an operator would — as a subprocess
over its real ports:

1. launch ``repro serve`` and parse the bound ports from its startup
   line;
2. probe ``GET /healthz``;
3. submit two tenants through the control plane (one scenario spec, one
   piped as a raw JSONL body — the ``repro scenario run --out -``
   cookbook shape);
4. assert per-tenant metrics appear under ``/tenants/<id>/metrics`` and
   the engine counters under ``/metrics`` (and that no bare ``Infinity``
   ever leaks into a JSON body);
5. scrape ``GET /metrics?format=prometheus`` and check the text
   exposition carries engine counters and per-tenant labelled series;
6. stop gracefully with SIGTERM, check the drain completed every
   admitted job, and check the ``--results-log`` holds a final record
   per tenant.

Usage::

    python tools/service_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request


def control(port: int, path: str, payload=None):
    """One control-plane request; returns the decoded JSON body."""
    url = f"http://127.0.0.1:{port}{path}"
    if payload is not None:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
    else:
        request = urllib.request.Request(url)
    with urllib.request.urlopen(request, timeout=10) as response:
        raw = response.read().decode()
    if "Infinity" in raw or "NaN" in raw:
        raise SystemExit(f"non-JSON float leaked into {path}: {raw[:200]}")
    return json.loads(raw)


def main() -> int:
    results_log = os.path.join(
        tempfile.mkdtemp(prefix="repro-smoke-"), "results.jsonl"
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--drain-grace",
            "10",
            "--workers",
            "4",
            "--results-log",
            results_log,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = proc.stdout.readline().strip()
        print(f"startup: {line}")
        match = re.search(r"control=http://[^:]+:(\d+)", line)
        if not match:
            raise SystemExit(f"could not parse control port from {line!r}")
        port = int(match.group(1))

        health = control(port, "/healthz")
        print(f"healthz: {health['status']}")
        assert health["status"] == "serving", health

        tenant1 = control(
            port,
            "/tenants",
            {"scenario": "fb", "params": {"scale": 0.05, "seed": 3}},
        )["tenant"]
        stream = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "scenario",
                "run",
                "fb",
                "--scale",
                "0.05",
                "--seed",
                "4",
                "--out",
                "-",
            ],
            check=True,
            capture_output=True,
            text=True,
        ).stdout
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/tenants",
            data=stream.encode(),
            headers={"Content-Type": "application/jsonl"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            tenant2 = json.loads(response.read())["tenant"]
        print(f"tenants: {tenant1['id']} (scenario), {tenant2['id']} (piped)")

        deadline = time.time() + 60
        while time.time() < deadline:
            tenants = control(port, "/tenants")["tenants"]
            if len(tenants) == 2 and all(
                t["state"] == "finished" for t in tenants
            ):
                break
            time.sleep(0.2)

        metrics = control(port, "/metrics")
        print(
            f"engine: {metrics['engine']['events_processed']} events, "
            f"heap peak {metrics['engine']['heap_peak']}"
        )
        per_tenant = {}
        for tenant in (tenant1, tenant2):
            body = control(port, f"/tenants/{tenant['id']}/metrics")
            per_tenant[tenant["id"]] = body["jobs_finished"]
            print(
                f"{tenant['id']}: jobs={body['jobs_finished']} "
                f"hit_ratio={body['hit_ratio']:.4f}"
            )
        assert all(jobs > 0 for jobs in per_tenant.values()), per_tenant

        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics?format=prometheus", timeout=10
        ) as response:
            content_type = response.headers.get("Content-Type", "")
            prometheus = response.read().decode()
        assert content_type.startswith("text/plain"), content_type
        assert "repro_engine_events_processed" in prometheus, prometheus[:400]
        for tenant in (tenant1, tenant2):
            needle = f'repro_tenant_jobs_finished{{tenant="{tenant["id"]}"'
            assert needle in prometheus, f"missing {needle}"
        print(f"prometheus: {len(prometheus.splitlines())} lines")

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=300)
        assert proc.returncode == 0, output
        summary = json.loads(output[output.index("{") :])
        # Per-tenant counts were snapshotted mid-flight; the final drain
        # must have completed every admitted job, and at least what the
        # snapshot had already seen.
        assert summary["jobs_finished"] == summary["jobs_submitted"], summary
        assert summary["jobs_finished"] >= sum(per_tenant.values()), summary
        assert summary["duration"] is not None
        print(
            f"drained: {summary['jobs_finished']} jobs, "
            f"duration {summary['duration']:.0f}s sim"
        )

        with open(results_log, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        finals = {
            r["tenant"]["id"]: r for r in records if r.get("final")
        }
        assert set(finals) == set(per_tenant), (set(finals), set(per_tenant))
        for tenant_id, record in finals.items():
            assert record["tenant"]["jobs_finished"] > 0, record
        print(f"results log: {len(records)} records, {len(finals)} final")
        print("service smoke: OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


if __name__ == "__main__":
    raise SystemExit(main())
