"""CI schema validator for ``--trace`` JSONL decision traces.

Checks every record of one or more trace files against the stable
schema contract in :mod:`repro.obs.trace`:

* each line is a JSON object carrying the envelope (``ev`` in
  :data:`~repro.obs.trace.EVENT_TYPES`, numeric ``t``, integer ``seq``),
* each record carries at least its type's
  :data:`~repro.obs.trace.REQUIRED_FIELDS` (extra payload fields are
  allowed — the schema is append-only),
* ``seq`` counts up from 0 without gaps and ``t`` never decreases
  (records are emitted in simulated-time order).

Exit status 0 when every file validates, 1 otherwise.  Usage::

    PYTHONPATH=src python tools/check_trace.py trace.jsonl [more...]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import read_jsonl  # noqa: E402
from repro.obs.trace import EVENT_TYPES, REQUIRED_FIELDS  # noqa: E402


def validate_records(records) -> list:
    """Every schema violation in ``records``, as human-readable strings."""
    errors = []
    last_t = float("-inf")
    for i, record in enumerate(records):
        where = f"record {i}"
        if not isinstance(record, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        ev = record.get("ev")
        if ev not in EVENT_TYPES:
            errors.append(f"{where}: unknown event type {ev!r}")
            continue
        t = record.get("t")
        if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
            errors.append(f"{where} ({ev}): bad timestamp {t!r}")
        elif t < last_t:
            errors.append(f"{where} ({ev}): time went backwards ({t} < {last_t})")
        else:
            last_t = t
        seq = record.get("seq")
        if seq != i:
            errors.append(f"{where} ({ev}): seq {seq!r}, expected {i}")
        missing = [f for f in REQUIRED_FIELDS[ev] if f not in record]
        if missing:
            errors.append(f"{where} ({ev}): missing fields {missing}")
    return errors


def check_file(path: str) -> list:
    """Validate one trace file; the list of violations (empty = valid)."""
    try:
        records = read_jsonl(path)
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    return validate_records(records)


def main(argv=None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        errors = check_file(path)
        if errors:
            failed = True
            print(f"{path}: INVALID ({len(errors)} violation(s))")
            for error in errors[:20]:
                print(f"  {error}")
        else:
            count = len(read_jsonl(path))
            print(f"{path}: ok ({count} records)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
