"""API-reference generator: docstrings → markdown, with cross-ref checking.

A dependency-free equivalent of ``pdoc`` (this repo deliberately has no
doc-tool dependency): imports every module under ``repro``, renders one
markdown page per module from the live docstrings and signatures into
``docs/api/``, and — the part CI gates on — verifies that every
Sphinx-style cross-reference (``:mod:`x```, ``:class:`~a.b.C```,
``:func:`...```, ...) written in a docstring resolves to a real,
importable object, and that every relative markdown link in ``docs/``
and ``README.md`` points at a file that exists.  Stale references fail
the build instead of rotting silently.

Usage::

    python tools/gen_api.py                  # write docs/api/*.md
    python tools/gen_api.py --check          # also fail on broken refs
    python tools/gen_api.py --check --no-write   # check only
"""

from __future__ import annotations

import argparse
import builtins
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

ROLE_RE = re.compile(
    r":(?:mod|class|func|meth|data|attr|exc|obj):`([^`]+)`"
)
MD_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#]+)(?:#[^)]*)?\)")


def walk_modules(package_name: str = "repro") -> Iterator[str]:
    """Dotted names of the package and every submodule, sorted."""
    package = importlib.import_module(package_name)
    yield package_name
    for info in pkgutil.walk_packages(package.__path__, prefix=f"{package_name}."):
        yield info.name


def public_members(module) -> Tuple[List[tuple], List[tuple]]:
    """(classes, functions) defined in ``module`` and publicly named."""
    classes, functions = [], []
    for name, obj in sorted(vars(module).items()):
        if name.startswith("_") or getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj):
            classes.append((name, obj))
        elif inspect.isfunction(obj):
            functions.append((name, obj))
    return classes, functions


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _doc(obj) -> str:
    return inspect.getdoc(obj) or ""


def render_module(name: str, module) -> str:
    """One markdown page for a module."""
    lines = [f"# `{name}`", ""]
    doc = _doc(module)
    if doc:
        lines += [doc, ""]
    classes, functions = public_members(module)
    for cls_name, cls in classes:
        lines += [f"## class `{cls_name}{_signature(cls)}`", ""]
        cls_doc = _doc(cls)
        if cls_doc:
            lines += [cls_doc, ""]
        for meth_name, meth in sorted(vars(cls).items()):
            if meth_name.startswith("_") or not (
                inspect.isfunction(meth) or isinstance(meth, (property,))
            ):
                continue
            if isinstance(meth, property):
                lines += [f"### property `{meth_name}`", ""]
                meth_doc = _doc(meth.fget) if meth.fget else ""
            else:
                lines += [f"### `{meth_name}{_signature(meth)}`", ""]
                meth_doc = _doc(meth)
            if meth_doc:
                lines += [meth_doc, ""]
    for fn_name, fn in functions:
        lines += [f"## `{fn_name}{_signature(fn)}`", ""]
        fn_doc = _doc(fn)
        if fn_doc:
            lines += [fn_doc, ""]
    return "\n".join(lines).rstrip() + "\n"


def render_index(names: List[str]) -> str:
    lines = [
        "# API reference",
        "",
        "Generated from docstrings by `tools/gen_api.py` (re-run it after",
        "changing any public docstring; CI builds and checks this tree).",
        "",
    ]
    for name in names:
        module = importlib.import_module(name)
        summary = (_doc(module).splitlines() or [""])[0]
        lines.append(f"- [`{name}`]({name}.md) — {summary}")
    return "\n".join(lines) + "\n"


# -- cross-reference checking -------------------------------------------------
def _resolve(target: str, module_name: str) -> bool:
    """True when a cross-reference target names an importable object."""
    target = target.strip().lstrip("~")
    # Signature-ish targets like ``pkg.mod.fn()``.
    target = target.split("(")[0]
    # Module-relative references (``Event.cancel`` inside
    # repro.sim.simulator) resolve against the defining module first.
    candidates = [f"{module_name}.{target}", target]
    for candidate in candidates:
        parts = candidate.split(".")
        for split in range(len(parts), 0, -1):
            module_path = ".".join(parts[:split])
            try:
                obj = importlib.import_module(module_path)
            except ImportError:
                continue
            try:
                for attr in parts[split:]:
                    obj = getattr(obj, attr)
            except AttributeError:
                continue
            return True
    # Last resorts for bare names: the module's namespace, builtins
    # (e.g. :class:`ValueError`), or — Sphinx's in-class shorthand — a
    # method of any class defined in the module (:meth:`events`).
    if "." not in target:
        module = importlib.import_module(module_name)
        if hasattr(module, target) or hasattr(builtins, target):
            return True
        for obj in vars(module).values():
            if inspect.isclass(obj) and hasattr(obj, target):
                return True
    return False


def check_docstring_refs(names: List[str]) -> List[str]:
    """Broken :role:`target` references across all docstrings."""
    errors = []
    for name in names:
        module = importlib.import_module(name)
        docs = [(name, _doc(module))]
        classes, functions = public_members(module)
        for cls_name, cls in classes:
            docs.append((f"{name}.{cls_name}", _doc(cls)))
            for meth_name, meth in vars(cls).items():
                if inspect.isfunction(meth):
                    docs.append((f"{name}.{cls_name}.{meth_name}", _doc(meth)))
        for fn_name, fn in functions:
            docs.append((f"{name}.{fn_name}", _doc(fn)))
        # Module source also carries #: attribute docs and comments with
        # roles; keep the check to real docstrings for signal.
        for where, doc in docs:
            for match in ROLE_RE.finditer(doc or ""):
                if not _resolve(match.group(1), name):
                    errors.append(f"{where}: unresolvable reference {match.group(0)}")
    return errors


def check_markdown_links(doc_paths: List[Path]) -> List[str]:
    """Relative links in the given markdown files that point nowhere."""
    errors = []
    for path in doc_paths:
        text = path.read_text()
        for match in MD_LINK_RE.finditer(text):
            target = match.group(1).strip()
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                try:
                    shown = path.relative_to(REPO_ROOT)
                except ValueError:
                    shown = path
                errors.append(f"{shown}: broken link {target}")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "docs" / "api"), help="output directory"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on broken docstring cross-references or markdown links",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing markdown output"
    )
    args = parser.parse_args(argv)

    names = sorted(walk_modules())
    if not args.no_write:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            module = importlib.import_module(name)
            (out_dir / f"{name}.md").write_text(render_module(name, module))
        (out_dir / "index.md").write_text(render_index(names))
        print(f"wrote {len(names) + 1} pages to {out_dir}")

    if args.check:
        errors = check_docstring_refs(names)
        doc_files = sorted((REPO_ROOT / "docs").glob("*.md"))
        doc_files.append(REPO_ROOT / "README.md")
        errors += check_markdown_links([p for p in doc_files if p.exists()])
        for error in errors:
            print(f"BROKEN: {error}", file=sys.stderr)
        if errors:
            print(f"cross-reference check: FAILED ({len(errors)})", file=sys.stderr)
            return 1
        print(f"cross-reference check: passed ({len(names)} modules)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
